"""SILC-FM: Subblocked InterLeaved Cache-Like Flat Memory (Section III).

NM is organised as a set-associative structure of 2 KB frames.  FM block
``b`` maps to congruence set ``b mod num_sets`` and may interleave its
subblocks into any unlocked way of that set; swaps are position-for-
position between the frame and the block's FM home, so each (frame,
partner) pair exchanges subblocks under a single 32-bit residency vector
and the flat-space mapping stays a bijection.

The access semantics implement Table I exactly; plans are tagged with
their Table I row so the test-suite can verify every case:

=========  =========  ==========  ==========================================
remap      bit        NM address  action                              (note)
=========  =========  ==========  ==========================================
match      1          --          service from NM                     row1
match      0          --          swap subblock from FM               row2
mismatch   1          yes         swap subblock from FM (native back) row3
mismatch   0          yes         service from NM                     row4
mismatch   1          no          restore current block + swap        row5
mismatch   0          no          restore current block + swap        row6
=========  =========  ==========  ==========================================

On top of the swap machinery sit the four features the evaluation
ablates (Fig. 6): bit-vector history batch fetch, hot-block locking,
set associativity and bandwidth-balancing bypass, plus the way/location
predictor that shortens the metadata critical path (Section III-F).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.core.activity import ActivityMonitor
from repro.core.bitvector import BitVectorHistoryTable
from repro.core.bypass import BandwidthBalancer
from repro.core.metadata import COUNTER_MAX, FULL_BITVEC, FrameMetadata
from repro.core.predictor import WayPredictor
from repro.schemes.base import AccessPlan, Level, MemoryScheme, Op
from repro.sim.config import (
    BLOCK_BYTES,
    SUBBLOCK_BYTES,
    SUBBLOCKS_PER_BLOCK,
    SilcFmConfig,
)
from repro.xmem.address import AddressSpace

#: one remap entry (remap field + bit vector + counters + lock/LRU bits)
METADATA_ENTRY_BYTES = 8


class SilcFmScheme(MemoryScheme):
    """The paper's contribution."""

    name = "silcfm"
    #: Table I rows this scheme's plans can resolve to (plan notes plus
    #: the ``+lock`` variants for lock-pinned hits) — the span-tracing
    #: row vocabulary ``repro analyze`` reports against.
    SPAN_ROWS = ("row1", "row1+lock", "row2", "row2-bypass",
                 "row3", "row3-bypass", "row4", "row4+lock",
                 "row5", "row5-bypass", "all-locked",
                 "nm-displaced-by-lock")

    def __init__(self, space: AddressSpace,
                 config: Optional[SilcFmConfig] = None) -> None:
        super().__init__(space)
        self.config = config or SilcFmConfig()
        self.assoc = self.config.associativity
        self.num_sets = space.num_sets(self.assoc)
        self.frames = [FrameMetadata() for _ in range(space.nm_blocks)]
        #: FM block -> frame index currently interleaving/holding it.
        self._frame_of_block: Dict[int, int] = {}
        self.monitor = ActivityMonitor(
            self.frames,
            hot_threshold=self.config.hot_threshold,
            aging_period=self.config.aging_period_accesses,
        )
        self.history = BitVectorHistoryTable(self.config.bitvector_table_entries)
        self.predictor = WayPredictor(self.config.predictor_entries)
        self.balancer = BandwidthBalancer(
            self.config.bypass_target_access_rate,
            self.config.access_rate_window,
        )
        self._lru_clock = 0
        self._pending_lock_ops: List[Op] = []
        #: SRAM cache of frames whose remap entry is on chip; a hit
        #: costs nothing, a miss fetches from the metadata channel.
        self._meta_cache: "OrderedDict[int, None]" = OrderedDict()
        self._meta_cache_entries = self.config.metadata_cache_entries
        self.meta_cache_hits = 0
        self.meta_cache_misses = 0
        #: metadata region starts right after the data region on the NM
        #: device (the paper keeps metadata in a separate channel/region).
        self._meta_base = space.nm_bytes
        # feature-level statistics
        self.restores = 0
        self.installs = 0
        self.locks_acquired = 0
        self.locks_released = 0
        self.all_locked_fallbacks = 0
        self.batch_fetched_subblocks = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def access(self, paddr: int, is_write: bool, pc: int = 0) -> AccessPlan:
        self.on_memory_access()
        prediction = self.predictor.predict(pc, paddr)
        if self.space.is_fm(paddr):
            plan, way, matched = self._access_fm(paddr, pc)
            nm_home = False
        else:
            plan, way = self._access_nm(paddr, pc)
            matched, nm_home = True, True

        plan = self._apply_latency_model(plan, way, prediction, paddr,
                                         nm_home=nm_home, matched=matched)
        in_fm = plan.serviced_from is Level.FM
        if self.config.enable_predictor and not plan.bypassed:
            # A bypassed access says nothing about where the data will
            # live once balancing ends (the swap was suppressed, not
            # decided against); training in_fm=True here would keep
            # steering post-bypass requests at FM and waste speculative
            # FM reads long after the window closes.
            self.predictor.record_outcome(prediction, way, in_fm)
            self.predictor.update(pc, paddr, way, in_fm)
        if self.config.enable_bypass:
            self.balancer.record(not in_fm)
        self.record_plan(plan)
        return plan

    def on_memory_access(self) -> None:
        if self.monitor.tick() and self.config.enable_locking:
            self._release_stale_locks()

    # ------------------------------------------------------------------
    # batch-engine fast path (repro.cpu.batch)
    # ------------------------------------------------------------------
    def access_fast(self, paddr: int, is_write: bool, pc: int = 0):
        """Table I rows 1 and 4 without plan construction.

        Handles the steady-state majority shape — serviced from NM, the
        remap entry in the SRAM metadata cache, no lock transition with
        data movement, no bypass, no speculative FM read — applying
        exactly the mutations :meth:`access` would.  Anything else
        (swaps, installs, restores, metadata DRAM fetches, bypass
        windows, lock fetches, aging boundaries) declines *before any
        mutation* and takes the full :meth:`access` path.
        """
        monitor = self.monitor
        config = self.config
        # ---- pure-read decline checks --------------------------------
        if self._pending_lock_ops:
            return None  # drained into this plan's background by access()
        if (monitor.accesses + 1) % monitor.aging_period == 0:
            return None  # the tick would age counters / release locks
        prediction = self.predictor.predict(pc, paddr)
        has_pred = config.enable_predictor and prediction.way is not None
        if has_pred and prediction.in_fm:
            # NM-serviced outcome would add the wasted speculative FM
            # read to background (or take the perfect-FM branch) — not
            # a single-op shape.
            return None
        space = self.space
        index = space.subblock_index(paddr)
        meta_cache = self._meta_cache
        if paddr < space.nm_bytes:
            # ---- NM-space: row 4 ------------------------------------
            way = space.nm_block_of(paddr)
            frame = self.frames[way]
            if frame.locked and frame.lock_owner == "fm":
                return None  # nm-displaced-by-lock: serviced from FM
            if frame.remap is not None and not frame.locked \
                    and frame.bitvec >> index & 1:
                return None  # row 3: swap-back background traffic
            will_lock = (config.enable_locking and not self._bypassing
                         and not frame.locked
                         and min(COUNTER_MAX, frame.nm_count + 1)
                         >= monitor.hot_threshold)
            if will_lock and frame.remap is not None:
                return None  # the lock would restore interleaving first
            if way not in meta_cache:
                return None  # metadata fetch stage
            # ---- accept: apply access()'s mutations -----------------
            monitor.accesses += 1
            self._touch(frame)
            frame.bump_nm()
            if will_lock:
                frame.lock("nm")
                self.locks_acquired += 1
                if self.telemetry is not None:
                    self.telemetry.instant("lock", cat="lock", way=way,
                                           owner="nm")
            meta_cache.move_to_end(way)
            self.meta_cache_hits += 1
        else:
            # ---- FM-space: row 1 ------------------------------------
            block = space.block_of(paddr)
            way = self._frame_of_block.get(block)
            if way is None:
                return None  # rows 5/6 (or bypass) — install machinery
            frame = self.frames[way]
            if not (frame.locked or frame.bitvec >> index & 1):
                return None  # row 2: swap-in background traffic
            if (config.enable_locking and not self._bypassing
                    and not frame.locked and frame.remap is not None):
                fm_count = min(COUNTER_MAX, frame.fm_count + 1)
                if (fm_count >= monitor.hot_threshold
                        and fm_count >= frame.nm_count
                        and frame.nm_count < monitor.hot_threshold):
                    return None  # lock acquisition fetches subblocks
            if has_pred and prediction.way == way:
                scan = (way,)
            else:
                scan = self._scan_order(way, True, prediction)
            for w in scan:
                if w not in meta_cache:
                    return None  # at least one metadata fetch stage
            # ---- accept: apply access()'s mutations -----------------
            monitor.accesses += 1
            self._touch(frame)
            frame.bump_fm()
            hits = 0
            for w in scan:
                meta_cache.move_to_end(w)
                hits += 1
            self.meta_cache_hits += hits
        if config.enable_predictor:
            self.predictor.record_outcome(prediction, way, False)
            self.predictor.update(pc, paddr, way, False)
        if config.enable_bypass:
            self.balancer.record(True)
        stats = self.stats
        stats.misses += 1
        stats.nm_serviced += 1
        return (True, way * BLOCK_BYTES + index * SUBBLOCK_BYTES,
                SUBBLOCK_BYTES, False)

    def steady_window_certificate(self, now: float) -> float:
        """Every SILC-FM state transition — swaps, lock grants/releases,
        aging ticks, predictor and balancer updates — is driven by the
        access stream itself (the aging clock counts *accesses*, not
        cycles), so there is no timed event to fence and the certificate
        is unbounded.  Accesses whose transition cannot be expressed as
        the single-op fast shape already re-enter the full plan path via
        ``access_fast`` returning None."""
        return float("inf")

    # ------------------------------------------------------------------
    # telemetry (pull-based probes + event hooks)
    # ------------------------------------------------------------------
    def attach_telemetry(self, hub) -> None:
        """Register SILC-FM's feature-level signals.

        Meters cover the ablatable mechanisms (Fig. 6): swap/restore
        churn, locking, batch fetch and bypass.  Gauges expose the
        balancer's windowed access rate, predictor accuracy and the
        metadata-cache hit rate.  Bypass-mode flips additionally emit
        instant trace events via the balancer's transition observer —
        the time-domain signal Section III-E's feedback loop produces.
        """
        super().attach_telemetry(hub)
        hub.meter("silcfm.installs", lambda: self.installs)
        hub.meter("silcfm.restores", lambda: self.restores)
        hub.meter("silcfm.locks_acquired", lambda: self.locks_acquired)
        hub.meter("silcfm.locks_released", lambda: self.locks_released)
        hub.meter("silcfm.all_locked_fallbacks",
                  lambda: self.all_locked_fallbacks)
        hub.meter("silcfm.batch_fetched_subblocks",
                  lambda: self.batch_fetched_subblocks)
        hub.meter("silcfm.bypassed_accesses",
                  lambda: self.balancer.bypassed_accesses)
        hub.meter("silcfm.bypass_transitions",
                  lambda: self.balancer.transitions)
        hub.gauge("silcfm.bypassing",
                  lambda: float(self.balancer.bypassing), trace=True)
        hub.gauge("silcfm.window_access_rate",
                  lambda: self.balancer.current_rate(), trace=True)
        hub.gauge("silcfm.lifetime_nm_fraction",
                  lambda: self.balancer.lifetime_rate)
        hub.gauge("silcfm.locked_frames",
                  lambda: float(self.locked_frames), trace=True)
        hub.gauge("silcfm.predictor_way_accuracy",
                  lambda: self.predictor.way_accuracy)
        hub.gauge("silcfm.predictor_location_accuracy",
                  lambda: self.predictor.location_accuracy)
        hub.gauge("silcfm.meta_cache_hit_rate", lambda: (
            self.meta_cache_hits /
            (self.meta_cache_hits + self.meta_cache_misses)
            if self.meta_cache_hits + self.meta_cache_misses else 0.0))
        self.balancer.on_transition = self._on_bypass_transition

    def _on_bypass_transition(self, bypassing: bool, rate: float) -> None:
        if self.telemetry is not None:
            self.telemetry.instant(
                "bypass-on" if bypassing else "bypass-off",
                cat="bypass", window_rate=round(rate, 4))

    def locate(self, paddr: int) -> Tuple[Level, int]:
        within = paddr % SUBBLOCK_BYTES
        index = self.space.subblock_index(paddr)
        if self.space.is_nm(paddr):
            frame_idx = self.space.nm_block_of(paddr)
            frame = self.frames[frame_idx]
            native_swapped_out = (
                frame.remap is not None
                and (frame.bit(index) or (frame.locked and frame.lock_owner == "fm"))
            )
            if native_swapped_out:
                return Level.FM, self._fm_home_offset(frame.remap, index) + within
            return Level.NM, frame_idx * BLOCK_BYTES + index * SUBBLOCK_BYTES + within

        block = self.space.block_of(paddr)
        way = self._frame_of_block.get(block)
        if way is not None:
            frame = self.frames[way]
            resident = frame.bit(index) or (frame.locked and frame.lock_owner == "fm")
            if resident:
                return Level.NM, way * BLOCK_BYTES + index * SUBBLOCK_BYTES + within
        return Level.FM, self._fm_home_offset(block, index) + within

    # ------------------------------------------------------------------
    # FM-space requests (Table I rows 1, 2, 5, 6)
    # ------------------------------------------------------------------
    def _access_fm(self, paddr: int, pc: int) -> Tuple[AccessPlan, int, bool]:
        block = self.space.block_of(paddr)
        index = self.space.subblock_index(paddr)
        way = self._frame_of_block.get(block)

        if way is not None:
            frame = self.frames[way]
            self._touch(frame)
            frame.bump_fm()
            if frame.locked or frame.bit(index):
                plan = AccessPlan.single(
                    Level.NM, self._nm_sub_op(way, index), "row1",
                    locked=frame.locked)
            elif self._bypassing:
                plan = self._bypass_plan(block, index, note="row2-bypass")
            else:
                plan = AccessPlan(
                    Level.FM, [[self._fm_sub_op(block, index)]],
                    self._swap_subblock_in(way, block, index, paddr, pc),
                    False, "row2")
            self._maybe_lock_fm(way)
            return plan, way, True

        # remap mismatch in every way of the set: rows 5/6
        if self._bypassing:
            plan = self._bypass_plan(block, index, note="row5-bypass")
            return plan, self._set_ways(block % self.num_sets)[0], False
        way = self._choose_victim(block % self.num_sets, block)
        if way is None:
            self.all_locked_fallbacks += 1
            plan = AccessPlan.single(
                Level.FM, self._fm_sub_op(block, index), "all-locked",
                locked=True)
            return plan, self._set_ways(block % self.num_sets)[0], False

        background: List[Op] = []
        frame = self.frames[way]
        if frame.remap is not None:
            background.extend(self._restore(way))
        background.extend(self._install(way, block, index, paddr, pc))
        plan = AccessPlan(
            Level.FM, [[self._fm_sub_op(block, index)]], background,
            False, "row5")
        self._touch(frame)
        self._maybe_lock_fm(way)
        return plan, way, False

    # ------------------------------------------------------------------
    # NM-space requests (Table I rows 3, 4)
    # ------------------------------------------------------------------
    def _access_nm(self, paddr: int, pc: int) -> Tuple[AccessPlan, int]:
        frame_idx = self.space.nm_block_of(paddr)
        index = self.space.subblock_index(paddr)
        frame = self.frames[frame_idx]
        self._touch(frame)
        frame.bump_nm()

        if frame.locked and frame.lock_owner == "fm":
            # the native page is fully displaced to the partner's home
            plan = AccessPlan.single(
                Level.FM, self._fm_sub_op(frame.remap, index),
                "nm-displaced-by-lock", locked=True)
        elif frame.remap is not None and not frame.locked and frame.bit(index):
            if self._bypassing:
                plan = self._bypass_plan(frame.remap, index, note="row3-bypass")
            else:
                plan = AccessPlan(
                    Level.FM, [[self._fm_sub_op(frame.remap, index)]],
                    self._swap_subblock_back(frame_idx, index),
                    False, "row3")
        else:
            plan = AccessPlan.single(
                Level.NM, self._nm_sub_op(frame_idx, index), "row4",
                locked=frame.locked)
        self._maybe_lock_nm(frame_idx)
        return plan, frame_idx

    # ------------------------------------------------------------------
    # swap machinery
    # ------------------------------------------------------------------
    def _swap_subblock_in(self, way: int, block: int, index: int,
                          paddr: int, pc: int) -> List[Op]:
        """Row 2: bring the FM block's subblock ``index`` into the frame,
        pushing the native subblock out to the block's home (position-
        for-position exchange)."""
        frame = self.frames[way]
        if frame.bitvec == 0:
            frame.first_pc = pc
            frame.first_addr = paddr
        frame.set_bit(index)
        self.stats.subblock_swaps += 1
        if self.telemetry is not None:
            self.telemetry.instant("swap-in", cat="swap",
                                   way=way, block=block, index=index)
        return [
            self._nm_sub_op(way, index),                      # native out
            self._nm_sub_op(way, index, is_write=True),       # FM data in
            self._fm_sub_op(block, index, is_write=True),     # native to home
        ]

    def _swap_subblock_back(self, way: int, index: int) -> List[Op]:
        """Row 3: the native subblock returns; the partner's goes home."""
        frame = self.frames[way]
        block = frame.remap
        footprint = frame.bitvec
        frame.clear_bit(index)
        if frame.bitvec == 0:
            # Nothing left interleaved: the frame is clean again.  Save
            # the pre-clear footprint first — a block that drains
            # incrementally must train the history table exactly like
            # one evicted by a restore, or its next install batch-
            # fetches nothing (Section III-A).
            if self.config.enable_bitvector_history and footprint:
                self.history.save(frame.first_pc, frame.first_addr, footprint)
            self._forget_remap(way)
        self.stats.subblock_swaps += 1
        if self.telemetry is not None:
            self.telemetry.instant("swap-back", cat="swap",
                                   way=way, block=block, index=index)
        return [
            self._nm_sub_op(way, index),                      # partner out
            self._nm_sub_op(way, index, is_write=True),       # native back in
            self._fm_sub_op(block, index, is_write=True),     # partner to home
        ]

    def _restore(self, way: int) -> List[Op]:
        """Rows 5/6 prologue: undo all interleaving in ``way`` and save
        the usage bit vector in the history table (Section III-A)."""
        frame = self.frames[way]
        block = frame.remap
        bitvec = FULL_BITVEC if frame.locked and frame.lock_owner == "fm" else frame.bitvec
        ops: List[Op] = []
        for j in range(SUBBLOCKS_PER_BLOCK):
            if bitvec >> j & 1:
                ops.append(self._nm_sub_op(way, j))                  # partner out
                ops.append(self._fm_sub_op(block, j, is_write=True))  # partner home
                ops.append(self._fm_sub_op(block, j))                 # native fetch
                ops.append(self._nm_sub_op(way, j, is_write=True))    # native back
        if self.config.enable_bitvector_history and bitvec:
            self.history.save(frame.first_pc, frame.first_addr, bitvec)
        self._forget_remap(way)
        self.restores += 1
        return ops

    def _install(self, way: int, block: int, index: int,
                 paddr: int, pc: int) -> List[Op]:
        """Rows 5/6 epilogue: interleave ``block`` into ``way``, batch-
        fetching the history-predicted footprint."""
        frame = self.frames[way]
        fetch_vec = 1 << index
        if self.config.enable_bitvector_history:
            fetch_vec |= self.history.lookup(pc, paddr)
        frame.remap = block
        frame.bitvec = fetch_vec
        frame.first_pc = pc
        frame.first_addr = paddr
        frame.fm_count = 1
        self._frame_of_block[block] = way
        self.installs += 1
        if self.telemetry is not None:
            self.telemetry.instant("install", cat="swap", way=way,
                                   block=block, fetch_vec=fetch_vec)
        ops: List[Op] = []
        for j in range(SUBBLOCKS_PER_BLOCK):
            if not fetch_vec >> j & 1:
                continue
            self.stats.subblock_swaps += 1
            if j != index:
                ops.append(self._fm_sub_op(block, j))          # batch fetch
                self.batch_fetched_subblocks += 1
            ops.append(self._nm_sub_op(way, j))                # native out
            ops.append(self._nm_sub_op(way, j, is_write=True))  # partner in
            ops.append(self._fm_sub_op(block, j, is_write=True))  # native home
        return ops

    def _forget_remap(self, way: int) -> None:
        frame = self.frames[way]
        if frame.remap is not None:
            self._frame_of_block.pop(frame.remap, None)
        frame.remap = None
        frame.bitvec = 0
        frame.fm_count = 0
        frame.unlock()

    # ------------------------------------------------------------------
    # locking (Section III-C)
    # ------------------------------------------------------------------
    def _maybe_lock_fm(self, way: int) -> None:
        """Lock the frame's remapped FM block when it crosses the hot
        threshold: complete the remap by fetching all missing subblocks."""
        if not self.config.enable_locking or self._bypassing:
            return
        frame = self.frames[way]
        if frame.locked or frame.remap is None:
            return
        if not self.monitor.fm_block_hot(frame):
            return
        if frame.fm_count < frame.nm_count or self.monitor.nm_block_hot(frame):
            # the frame's native page is hot itself: fully displacing it
            # to FM would hurt more than the lock helps (the counters
            # exist precisely to classify the two coexisting blocks).
            return
        block = frame.remap
        pending = frame.missing_indices()
        for j in pending:
            frame.set_bit(j)
            self.stats.subblock_swaps += 1
        self._pending_lock_ops.extend(
            op
            for j in pending
            for op in (
                self._fm_sub_op(block, j),
                self._nm_sub_op(way, j),
                self._nm_sub_op(way, j, is_write=True),
                self._fm_sub_op(block, j, is_write=True),
            )
        )
        frame.lock("fm")
        self.locks_acquired += 1
        if self.telemetry is not None:
            self.telemetry.instant("lock", cat="lock", way=way,
                                   owner="fm", block=block,
                                   fetched=len(pending))

    def _maybe_lock_nm(self, frame_idx: int) -> None:
        """Pin a hot native page: restore any interleaving, then lock so
        no FM block can displace its subblocks."""
        if not self.config.enable_locking or self._bypassing:
            return
        frame = self.frames[frame_idx]
        if frame.locked or not self.monitor.nm_block_hot(frame):
            return
        if frame.remap is not None:
            self._pending_lock_ops.extend(self._restore(frame_idx))
        frame.lock("nm")
        self.locks_acquired += 1
        if self.telemetry is not None:
            self.telemetry.instant("lock", cat="lock", way=frame_idx,
                                   owner="nm")

    def _drain_lock_ops(self) -> List[Op]:
        ops, self._pending_lock_ops = self._pending_lock_ops, []
        return ops

    def _release_stale_locks(self) -> None:
        """After aging, unlock frames whose owner cooled off.  An
        unlocked fm-owner behaves as a normal interleaved block with all
        bits set (Section III-C), so hotter data can displace it
        incrementally."""
        for way in self.monitor.stale_locks():
            frame = self.frames[way]
            owner = frame.lock_owner
            if owner == "fm":
                frame.bitvec = FULL_BITVEC
            frame.unlock()
            self.locks_released += 1
            if self.telemetry is not None:
                self.telemetry.instant("unlock", cat="lock", way=way,
                                       owner=owner)

    # ------------------------------------------------------------------
    # victim choice (associativity, Section III-C)
    # ------------------------------------------------------------------
    def _set_ways(self, set_index: int) -> List[int]:
        return [set_index + w * self.num_sets for w in range(self.assoc)]

    def _choose_victim(self, set_index: int, block: int) -> Optional[int]:
        """Pick the way ``block`` interleaves into.

        Placement is row-locality aware: a 2 KB frame's slices share a
        DRAM row with its 31 neighbouring frames, so blocks of the same
        32-block spatial group prefer the same way — that keeps
        neighbouring hot blocks in neighbouring frames (as a direct map
        would) and their accesses row-buffer friendly.  The preferred
        way is used when it is clean; otherwise fall back to LRU among
        clean, then LRU among unlocked frames.
        """
        ways = self._set_ways(set_index)
        unlocked = [w for w in ways if not self.frames[w].locked]
        if not unlocked:
            return None
        preferred = ways[(block // SUBBLOCKS_PER_BLOCK) % self.assoc]
        clean = [w for w in unlocked if self.frames[w].remap is None]
        if preferred in clean:
            return preferred
        pool = clean or unlocked
        return min(pool, key=lambda w: self.frames[w].lru)

    def _touch(self, frame: FrameMetadata) -> None:
        self._lru_clock += 1
        frame.lru = self._lru_clock

    # ------------------------------------------------------------------
    # bypass (Section III-E)
    # ------------------------------------------------------------------
    @property
    def _bypassing(self) -> bool:
        return self.config.enable_bypass and self.balancer.bypassing

    def _bypass_plan(self, block: int, index: int, note: str) -> AccessPlan:
        self.balancer.note_bypassed()
        return AccessPlan.single(
            Level.FM, self._fm_sub_op(block, index), note, bypassed=True)

    # ------------------------------------------------------------------
    # latency model (Section III-F)
    # ------------------------------------------------------------------
    def _apply_latency_model(self, plan: AccessPlan, way: int, prediction,
                             paddr: int, nm_home: bool,
                             matched: bool) -> AccessPlan:
        """Prepend the metadata-fetch critical path and fold in the
        way/location predictor (Section III-F).

        * An NM-space request's frame is fixed by its address, so exactly
          one remap entry is read.
        * An FM-space request that matches a way needs the scan up to
          that way — collapsed to one entry by a correct way prediction.
        * An FM-space request that matches nowhere must check **all**
          ways before the miss is known.
        * A (correct) FM location prediction launches the FM data access
          in parallel with the first metadata fetch; a wrong one wastes
          an FM read (bandwidth only).
        """
        plan.background.extend(self._drain_lock_ops())
        data_stages = plan.stages
        goes_to_fm = plan.serviced_from is Level.FM
        has_pred = self.config.enable_predictor and prediction.way is not None
        way_correct = has_pred and prediction.way == way

        if nm_home or (matched and way_correct):
            meta_stages = self._meta_stages([way])
        else:
            meta_stages = self._meta_stages(
                self._scan_order(way, matched, prediction))

        if has_pred and way_correct and prediction.in_fm == goes_to_fm:
            # perfect speculation: the data access is launched
            # immediately; the metadata read (if the entry is not in the
            # SRAM metadata cache) proceeds in parallel purely to
            # *verify* the prediction, so it is off the critical path
            # ("the latency is just a single access latency",
            # Section III-F).
            plan.stages = data_stages
            for stage in meta_stages:
                plan.background.extend(stage)
            return plan
        if has_pred and prediction.in_fm and goes_to_fm:
            # FM location speculated correctly (way may be wrong): the
            # request was forwarded to FM alongside the metadata check,
            # so "the latency is just a single FM access latency" —
            # the serialized remap-entry scan proceeds purely as
            # verification, off the critical path (Section III-F).
            plan.stages = data_stages
            for stage in meta_stages:
                plan.background.extend(stage)
            return plan
        if has_pred and prediction.in_fm and not goes_to_fm:
            # wasted speculative FM read: pure bandwidth cost, aimed at
            # the requested address's would-be FM home.
            spec_offset = paddr % self.space.fm_bytes
            spec_offset -= spec_offset % SUBBLOCK_BYTES
            plan.background.append(Op(Level.FM, spec_offset, SUBBLOCK_BYTES, False))
        elif has_pred and way_correct and not prediction.in_fm and goes_to_fm:
            # NM speculated at the right way but the data was in FM:
            # the speculative NM data read is wasted bandwidth.
            plan.background.append(
                self._nm_sub_op(way, self.space.subblock_index(paddr)))
        plan.stages = meta_stages + data_stages
        return plan

    def _scan_order(self, actual_way: int, matched: bool, prediction) -> List[int]:
        """Remap entries probed serially: the (wrong) predicted way
        first, then the set's ways — up to the hit, or all of them when
        nothing matches (rows 5/6: a miss needs every entry checked)."""
        set_index = actual_way % self.num_sets
        ways = self._set_ways(set_index)
        order: List[int] = []
        if (self.config.enable_predictor and prediction.way is not None
                and prediction.way in ways and prediction.way != actual_way):
            order.append(prediction.way)
        for w in ways:
            if w not in order:
                order.append(w)
            if matched and w == actual_way:
                break
        return order

    # ------------------------------------------------------------------
    # op constructors
    # ------------------------------------------------------------------
    def _nm_sub_op(self, way: int, index: int, is_write: bool = False) -> Op:
        return Op(Level.NM, way * BLOCK_BYTES + index * SUBBLOCK_BYTES,
                  SUBBLOCK_BYTES, is_write)

    def _fm_sub_op(self, block: int, index: int, is_write: bool = False) -> Op:
        return Op(Level.FM, self._fm_home_offset(block, index),
                  SUBBLOCK_BYTES, is_write)

    def _fm_home_offset(self, block: int, index: int) -> int:
        offset = block * BLOCK_BYTES - self.space.nm_bytes + index * SUBBLOCK_BYTES
        if offset < 0:
            raise ValueError(f"block {block} is not an FM block")
        return offset

    def _meta_stages(self, ways: List[int]) -> List[List[Op]]:
        """Serial metadata-fetch stages for ``ways``, filtered through
        the SRAM metadata cache (cached entries cost nothing)."""
        stages: List[List[Op]] = []
        for way in ways:
            if way in self._meta_cache:
                self._meta_cache.move_to_end(way)
                self.meta_cache_hits += 1
                continue
            self.meta_cache_misses += 1
            self._meta_cache[way] = None
            if len(self._meta_cache) > self._meta_cache_entries:
                self._meta_cache.popitem(last=False)
            stages.append([self._meta_op(way)])
        return stages

    def _meta_op(self, way: int) -> Op:
        """Remap-entry read.  Entries are laid out set-contiguously
        (set 0's ways, then set 1's, ...) so a serial scan of one set's
        entries stays within one row — consecutive probes are row-buffer
        hits, which is why the metadata region behaves like the paper's
        dedicated metadata channel."""
        set_index = way % self.num_sets
        position = way // self.num_sets
        offset = (set_index * self.assoc + position) * METADATA_ENTRY_BYTES
        return Op(Level.NM, self._meta_base + offset, METADATA_ENTRY_BYTES, False)

    # ------------------------------------------------------------------
    # invariants (differential oracle hook)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Metadata agreement: residency bit vectors, the
        ``_frame_of_block`` reverse map and the lock owners must tell
        one consistent story (the flat-space bijection depends on it)."""
        remap_seen: Dict[int, int] = {}
        for way, frame in enumerate(self.frames):
            self._invariant(0 <= frame.bitvec <= FULL_BITVEC,
                            f"way {way} bit vector {frame.bitvec:#x} "
                            "out of range")
            self._invariant(0 <= frame.nm_count <= COUNTER_MAX
                            and 0 <= frame.fm_count <= COUNTER_MAX,
                            f"way {way} activity counter out of 6-bit range")
            if frame.locked:
                self._invariant(frame.lock_owner in ("nm", "fm"),
                                f"way {way} locked with owner "
                                f"{frame.lock_owner!r}")
            else:
                self._invariant(frame.lock_owner is None,
                                f"way {way} unlocked but owner "
                                f"{frame.lock_owner!r} lingers")
            if frame.remap is None:
                self._invariant(frame.bitvec == 0,
                                f"way {way} has residency bits "
                                f"{frame.bitvec:#x} but no remapped block")
                self._invariant(frame.fm_count == 0,
                                f"way {way} counts FM activity with no "
                                "remapped block")
                self._invariant(frame.lock_owner != "fm",
                                f"way {way} fm-locked with no remapped block")
                continue
            block = frame.remap
            self._invariant(block >= self.space.nm_blocks,
                            f"way {way} remaps NM-native block {block}")
            self._invariant(block < self.space.total_blocks,
                            f"way {way} remaps out-of-space block {block}")
            self._invariant(block % self.num_sets == way % self.num_sets,
                            f"way {way} (set {way % self.num_sets}) remaps "
                            f"block {block} of set {block % self.num_sets}")
            self._invariant(block not in remap_seen,
                            f"block {block} interleaved into both way "
                            f"{remap_seen.get(block)} and way {way}")
            remap_seen[block] = way
            self._invariant(self._frame_of_block.get(block) == way,
                            f"way {way} remaps block {block} but the "
                            "reverse map says "
                            f"{self._frame_of_block.get(block)}")
            if frame.locked and frame.lock_owner == "fm":
                self._invariant(frame.bitvec == FULL_BITVEC,
                                f"way {way} fm-locked with partial bit "
                                f"vector {frame.bitvec:#x}")
            elif frame.locked:
                self._invariant(False,
                                f"way {way} nm-locked while block {block} is "
                                "remapped into it (restore must precede the "
                                "lock)")
            else:
                self._invariant(frame.bitvec != 0,
                                f"way {way} remaps block {block} with an "
                                "empty bit vector (drain should have "
                                "forgotten it)")
        for block, way in self._frame_of_block.items():
            self._invariant(0 <= way < len(self.frames),
                            f"block {block} mapped to bad way {way}")
            self._invariant(self.frames[way].remap == block,
                            f"reverse map says way {way} holds block "
                            f"{block} but the frame metadata disagrees")

    # ------------------------------------------------------------------
    # introspection for tests / reports
    # ------------------------------------------------------------------
    def frame(self, way: int) -> FrameMetadata:
        """The metadata of NM frame ``way`` (read-only introspection)."""
        return self.frames[way]

    def way_of_block(self, block: int) -> Optional[int]:
        """The frame currently interleaving/holding FM ``block``, if any."""
        return self._frame_of_block.get(block)

    @property
    def locked_frames(self) -> int:
        return sum(frame.locked for frame in self.frames)
