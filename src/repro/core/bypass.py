"""Bypassing / bandwidth balancing (Section III-E).

NM is part of the address space, not a cache: leaving FM idle throws
away a quarter of the system's bandwidth.  With an NM:FM bandwidth ratio
of N:1 the ideal split services N/(N+1) of the traffic from NM — 0.8 for
the paper's 4:1 system.  The monitor measures the access rate over a
sliding window of LLC misses; while it exceeds the target, new swaps are
suppressed and would-be swap requests are serviced straight from FM
(resident blocks keep operating from NM), steering the rate back toward
the target.
"""

from __future__ import annotations

from typing import Callable, Optional


class BandwidthBalancer:
    """Windowed access-rate monitor with a hysteresis-free target.

    Besides the per-window decision the balancer keeps **lifetime**
    accounting (every recorded miss, including the in-flight partial
    window) so end-of-run reports and telemetry see the true NM
    fraction — windowed state alone silently discards up to
    ``window - 1`` trailing misses at drain.
    """

    def __init__(self, target_access_rate: float = 0.8, window: int = 4096) -> None:
        if not 0.0 < target_access_rate < 1.0:
            raise ValueError("target access rate must be in (0, 1)")
        if window < 16:
            raise ValueError("window too small to be meaningful")
        self.target = target_access_rate
        self.window = window
        self._window_total = 0
        self._window_nm = 0
        self._bypassing = False
        self.bypassed_accesses = 0
        self.windows_observed = 0
        # lifetime accounting (never reset, partial window included)
        self.total_accesses = 0
        self.nm_accesses = 0
        #: bypass-mode flips (off->on and on->off each count one).
        self.transitions = 0
        #: rate of the most recently *completed* window.
        self.last_window_rate = 0.0
        #: observer called as ``on_transition(bypassing, rate)`` at the
        #: window boundary where the mode flips (telemetry tracing).
        self.on_transition: Optional[Callable[[bool, float], None]] = None

    # ------------------------------------------------------------------
    def record(self, serviced_from_nm: bool) -> None:
        """Account one LLC miss; re-evaluates at window boundaries."""
        self.total_accesses += 1
        self.nm_accesses += serviced_from_nm
        self._window_total += 1
        self._window_nm += serviced_from_nm
        if self._window_total >= self.window:
            rate = self._window_nm / self._window_total
            self.last_window_rate = rate
            if (rate > self.target) != self._bypassing:
                self._bypassing = not self._bypassing
                self.transitions += 1
                if self.on_transition is not None:
                    self.on_transition(self._bypassing, rate)
            self._window_total = 0
            self._window_nm = 0
            self.windows_observed += 1

    @property
    def bypassing(self) -> bool:
        """True while new swaps should be suppressed."""
        return self._bypassing

    def note_bypassed(self) -> None:
        self.bypassed_accesses += 1

    # ------------------------------------------------------------------
    # read-side API (telemetry, tests, end-of-run reports)
    # ------------------------------------------------------------------
    def current_rate(self) -> float:
        """NM access rate of the in-flight window; falls back to the
        last completed window right at a boundary (so a telemetry
        sample never reads a spurious 0.0)."""
        if self._window_total == 0:
            return self.last_window_rate
        return self._window_nm / self._window_total

    @property
    def current_window_rate(self) -> float:
        if self._window_total == 0:
            return 0.0
        return self._window_nm / self._window_total

    @property
    def lifetime_rate(self) -> float:
        """NM fraction over *every* recorded miss — including the
        partial final window that the windowed state discards."""
        if self.total_accesses == 0:
            return 0.0
        return self.nm_accesses / self.total_accesses

    @property
    def pending_window_accesses(self) -> int:
        """Misses recorded in the not-yet-evaluated window."""
        return self._window_total
