"""Bypassing / bandwidth balancing (Section III-E).

NM is part of the address space, not a cache: leaving FM idle throws
away a quarter of the system's bandwidth.  With an NM:FM bandwidth ratio
of N:1 the ideal split services N/(N+1) of the traffic from NM — 0.8 for
the paper's 4:1 system.  The monitor measures the access rate over a
sliding window of LLC misses; while it exceeds the target, new swaps are
suppressed and would-be swap requests are serviced straight from FM
(resident blocks keep operating from NM), steering the rate back toward
the target.
"""

from __future__ import annotations


class BandwidthBalancer:
    """Windowed access-rate monitor with a hysteresis-free target."""

    def __init__(self, target_access_rate: float = 0.8, window: int = 4096) -> None:
        if not 0.0 < target_access_rate < 1.0:
            raise ValueError("target access rate must be in (0, 1)")
        if window < 16:
            raise ValueError("window too small to be meaningful")
        self.target = target_access_rate
        self.window = window
        self._window_total = 0
        self._window_nm = 0
        self._bypassing = False
        self.bypassed_accesses = 0
        self.windows_observed = 0

    # ------------------------------------------------------------------
    def record(self, serviced_from_nm: bool) -> None:
        """Account one LLC miss; re-evaluates at window boundaries."""
        self._window_total += 1
        self._window_nm += serviced_from_nm
        if self._window_total >= self.window:
            rate = self._window_nm / self._window_total
            self._bypassing = rate > self.target
            self._window_total = 0
            self._window_nm = 0
            self.windows_observed += 1

    @property
    def bypassing(self) -> bool:
        """True while new swaps should be suppressed."""
        return self._bypassing

    def note_bypassed(self) -> None:
        self.bypassed_accesses += 1

    @property
    def current_window_rate(self) -> float:
        if self._window_total == 0:
            return 0.0
        return self._window_nm / self._window_total
