"""SILC-FM — the paper's primary contribution."""

from repro.core.activity import ActivityMonitor
from repro.core.bitvector import BitVectorHistoryTable, history_index
from repro.core.bypass import BandwidthBalancer
from repro.core.metadata import COUNTER_MAX, FULL_BITVEC, FrameMetadata
from repro.core.predictor import Prediction, WayPredictor
from repro.core.silcfm import METADATA_ENTRY_BYTES, SilcFmScheme

__all__ = [
    "ActivityMonitor",
    "BandwidthBalancer",
    "BitVectorHistoryTable",
    "COUNTER_MAX",
    "FULL_BITVEC",
    "FrameMetadata",
    "METADATA_ENTRY_BYTES",
    "Prediction",
    "SilcFmScheme",
    "WayPredictor",
    "history_index",
]
