"""``repro top`` — a live terminal monitor for a running sweep service.

Subscribes to the service's ``watch`` stream and redraws a compact
dashboard on every windowed telemetry event: throughput, source mix,
queue depth, job counters, and cache-hit latency percentiles (polled
from ``stats`` alongside each frame).  Pure NDJSON client — no curses,
no external dependencies; the screen is repainted with ANSI clear codes
only when stdout is a TTY, so piping ``repro top`` into a file yields
one parseable text frame per window.
"""

from __future__ import annotations

import asyncio
import sys
from typing import IO, Optional


def _bar(fraction: float, width: int = 24) -> str:
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def render_frame(telemetry: dict, stats: dict) -> str:
    """One dashboard frame from a ``telemetry`` event plus the most
    recent ``stats`` response (separated so tests can render without a
    live service)."""
    window = telemetry.get("window", {})
    totals = telemetry.get("totals", {})
    cells = stats.get("cells", {})
    by_source = cells.get("by_source", {})
    completed = max(1, cells.get("completed", 0) or 1)
    latency = stats.get("cache_hit_latency", {})
    jobs = stats.get("jobs", {})
    lines = [
        "repro top — sweep service "
        f"(uptime {stats.get('uptime_seconds', 0):,.0f}s, "
        f"window #{telemetry.get('seq', 0)})",
        "",
        f"  cells/sec   {window.get('cells_per_second', 0.0):8.1f}   "
        f"window: +{window.get('completed', 0)} done, "
        f"+{window.get('failed', 0)} failed",
        f"  completed   {cells.get('completed', 0):8d}   "
        f"failed: {cells.get('failed', 0)}   "
        f"requested: {cells.get('requested', 0)}",
        "",
        "  source mix (lifetime)",
    ]
    for source in ("cache", "simulated", "dedup"):
        count = by_source.get(source, 0)
        lines.append(f"    {source:<10} {count:8d}  "
                     f"[{_bar(count / completed)}]")
    lines.extend([
        "",
        f"  jobs        active {telemetry.get('active_jobs', 0)}  "
        f"submitted {jobs.get('submitted', 0)}  "
        f"completed {jobs.get('completed', 0)}  "
        f"failed {jobs.get('failed', 0)}  "
        f"cancelled {jobs.get('cancelled', 0)}",
        f"  queue       {telemetry.get('inflight', 0)} in-flight keys",
        f"  dedup rate  {stats.get('dedup_hit_rate', 0.0):.1%}   "
        f"exactly-once witness: "
        f"max {stats.get('max_executions_per_key', 0)} execution(s)/key",
        f"  cache hit   p50 {latency.get('p50_ms')} ms   "
        f"p95 {latency.get('p95_ms')} ms   "
        f"max {latency.get('max_ms')} ms "
        f"({latency.get('count', 0)} samples)",
    ])
    return "\n".join(lines) + "\n"


async def _top(host: str, port: int, frames: Optional[int],
               out: IO[str]) -> int:
    from repro.service.client import SweepClient

    clear = "\x1b[2J\x1b[H" if out.isatty() else ""
    async with SweepClient(host, port) as client:
        await client.watch()
        stats = await client.stats()
        seen = 0
        while frames is None or seen < frames:
            message = await client.recv_type("telemetry")
            stats = await client.stats()
            out.write(clear + render_frame(message, stats))
            out.flush()
            seen += 1
    return 0


def run_top(host: str, port: int, frames: Optional[int] = None,
            out: Optional[IO[str]] = None) -> int:
    """Blocking entry point for the CLI.  ``frames`` bounds the number
    of telemetry windows rendered (``None`` = until interrupted)."""
    out = out if out is not None else sys.stdout
    try:
        return asyncio.run(_top(host, port, frames, out))
    except KeyboardInterrupt:
        return 0
