"""Lightweight asyncio HTTP listener for ``/metrics`` and ``/healthz``.

Deliberately tiny: GET-only, HTTP/1.0 close semantics, no routing
framework.  It exists so a fleet scraper (Prometheus, a load balancer
health check, or the CI smoke job) can observe a running
``python -m repro serve`` without speaking the NDJSON protocol.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Callable, Dict, Optional

from repro.obs import log
from repro.obs.metrics import CONTENT_TYPE, MetricsRegistry

_log = log.get_logger("repro.obs.http")

_MAX_REQUEST_BYTES = 16384


class ObsHTTPServer:
    """Serves the registry exposition and a JSON health payload."""

    def __init__(
        self,
        registry: MetricsRegistry,
        healthz: Optional[Callable[[], Dict[str, Any]]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.registry = registry
        self.healthz = healthz
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._started = time.time()

    async def start(self) -> None:
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self._started = time.time()
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]
        _log.info("metrics_http_listening", host=self.host, port=self.port)

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def _health_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "status": "ok",
            "uptime_seconds": round(time.time() - self._started, 3),
        }
        if self.healthz is not None:
            try:
                payload.update(self.healthz())
            except Exception as exc:
                payload["status"] = "degraded"
                payload["error"] = str(exc)
        return payload

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            request = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=10.0
            )
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError, asyncio.TimeoutError):
            writer.close()
            return
        if len(request) > _MAX_REQUEST_BYTES:
            await self._respond(writer, 400, "text/plain; charset=utf-8", "request too large\n")
            return
        line = request.split(b"\r\n", 1)[0].decode("latin-1", "replace")
        parts = line.split()
        if len(parts) < 2 or parts[0] not in ("GET", "HEAD"):
            await self._respond(writer, 405, "text/plain; charset=utf-8", "method not allowed\n")
            return
        path = parts[1].split("?", 1)[0]
        head_only = parts[0] == "HEAD"
        if path == "/metrics":
            await self._respond(writer, 200, CONTENT_TYPE, self.registry.render(), head_only)
        elif path == "/healthz":
            body = json.dumps(self._health_payload(), sort_keys=True) + "\n"
            await self._respond(writer, 200, "application/json; charset=utf-8", body, head_only)
        else:
            await self._respond(writer, 404, "text/plain; charset=utf-8", "not found\n", head_only)

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        content_type: str,
        body: str,
        head_only: bool = False,
    ) -> None:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed"}.get(
            status, "Error"
        )
        payload = body.encode("utf-8")
        header = (
            "HTTP/1.0 %d %s\r\n"
            "Content-Type: %s\r\n"
            "Content-Length: %d\r\n"
            "Connection: close\r\n"
            "\r\n" % (status, reason, content_type, len(payload))
        )
        try:
            writer.write(header.encode("latin-1") + (b"" if head_only else payload))
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()
