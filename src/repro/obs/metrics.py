"""Process-local metrics registry with Prometheus text exposition.

Implements the subset of the Prometheus client data model the fleet
needs — counters, gauges (including collect-time callback gauges), and
cumulative histograms — plus:

- :meth:`MetricsRegistry.render` producing text exposition format 0.0.4
  (the format scraped from ``/metrics`` and returned by the ``metrics``
  protocol verb), and
- :func:`parse_exposition`, a minimal in-tree parser for the same
  format, used by the golden tests and the CI witness assertions so the
  scrape contract is checked without any external client library.

All mutation and rendering is guarded by a single registry lock, so a
server thread can render while worker callbacks increment.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

# Latency buckets (seconds) sized for cache-hit service latency: sub-ms
# memo hits through multi-second cold simulations.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class MetricError(ValueError):
    """Invalid metric definition, usage, or exposition text."""


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise MetricError("invalid metric name: %r" % (name,))
    return name


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_le(bound: float) -> str:
    return "+Inf" if bound == math.inf else _format_value(bound)


def _label_pairs(labelnames: Sequence[str], labels: Dict[str, str]) -> Tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise MetricError(
            "label mismatch: expected %r, got %r" % (tuple(labelnames), tuple(sorted(labels)))
        )
    return tuple(str(labels[name]) for name in labelnames)


def _render_labels(labelnames: Sequence[str], values: Sequence[str], extra: str = "") -> str:
    parts = [
        '%s="%s"' % (name, _escape_label_value(value))
        for name, value in zip(labelnames, values)
    ]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


class _Metric:
    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str], lock: threading.Lock):
        self.name = _check_name(name)
        self.help = help
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise MetricError("invalid label name: %r" % (label,))
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self._lock = lock

    def _header(self) -> List[str]:
        return [
            "# HELP %s %s" % (self.name, _escape_help(self.help)),
            "# TYPE %s %s" % (self.name, self.kind),
        ]

    def _render_locked(self) -> List[str]:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Metric):
    """Monotonically increasing value, optionally partitioned by labels."""

    kind = "counter"

    def __init__(self, name, help, labelnames, lock):
        super().__init__(name, help, labelnames, lock)
        self._values: Dict[Tuple[str, ...], float] = {}
        if not self.labelnames:
            self._values[()] = 0.0

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise MetricError("counter %s cannot decrease" % self.name)
        key = _label_pairs(self.labelnames, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        key = _label_pairs(self.labelnames, labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def _render_locked(self) -> List[str]:
        lines = self._header()
        for key in sorted(self._values):
            lines.append(
                "%s%s %s"
                % (self.name, _render_labels(self.labelnames, key), _format_value(self._values[key]))
            )
        return lines


class Gauge(_Metric):
    """Point-in-time value; either set explicitly or collected via callback."""

    kind = "gauge"

    def __init__(self, name, help, labelnames, lock):
        super().__init__(name, help, labelnames, lock)
        self._values: Dict[Tuple[str, ...], float] = {}
        self._functions: Dict[Tuple[str, ...], Callable[[], float]] = {}

    def set(self, value: float, **labels: str) -> None:
        key = _label_pairs(self.labelnames, labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_pairs(self.labelnames, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def set_function(self, fn: Callable[[], float], **labels: str) -> None:
        key = _label_pairs(self.labelnames, labels)
        with self._lock:
            self._functions[key] = fn

    def value(self, **labels: str) -> float:
        key = _label_pairs(self.labelnames, labels)
        with self._lock:
            fn = self._functions.get(key)
        if fn is not None:
            return float(fn())
        with self._lock:
            return self._values.get(key, 0.0)

    def _render_locked(self) -> List[str]:
        samples: Dict[Tuple[str, ...], float] = dict(self._values)
        for key, fn in self._functions.items():
            try:
                samples[key] = float(fn())
            except Exception:
                samples[key] = float("nan")
        lines = self._header()
        for key in sorted(samples):
            lines.append(
                "%s%s %s"
                % (self.name, _render_labels(self.labelnames, key), _format_value(samples[key]))
            )
        return lines


class Histogram(_Metric):
    """Cumulative histogram with inclusive upper bounds (``le``)."""

    kind = "histogram"

    def __init__(self, name, help, buckets, lock):
        super().__init__(name, help, (), lock)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise MetricError("histogram %s needs at least one bucket" % name)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise MetricError("histogram %s buckets must be sorted and unique" % name)
        if bounds[-1] == math.inf:
            bounds = bounds[:-1]
        self.bounds: Tuple[float, ...] = bounds
        self._counts: List[int] = [0] * (len(bounds) + 1)  # last = overflow (+Inf)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            counts = list(self._counts)
            total, acc = self._count, self._sum
        out: Dict[str, float] = {}
        running = 0
        for bound, count in zip(self.bounds, counts):
            running += count
            out[_format_le(bound)] = float(running)
        out["+Inf"] = float(total)
        out["sum"] = acc
        out["count"] = float(total)
        return out

    def _render_locked(self) -> List[str]:
        lines = self._header()
        running = 0
        for bound, count in zip(self.bounds, self._counts):
            running += count
            lines.append(
                '%s_bucket{le="%s"} %s' % (self.name, _format_le(bound), _format_value(running))
            )
        lines.append('%s_bucket{le="+Inf"} %s' % (self.name, _format_value(self._count)))
        lines.append("%s_sum %s" % (self.name, _format_value(self._sum)))
        lines.append("%s_count %s" % (self.name, _format_value(self._count)))
        return lines


class MetricsRegistry:
    """An ordered collection of metrics sharing one lock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    def _register(self, metric: _Metric) -> _Metric:
        with self._lock:
            if metric.name in self._metrics:
                raise MetricError("duplicate metric name: %r" % (metric.name,))
            self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help: str, labelnames: Sequence[str] = ()) -> Counter:
        return self._register(Counter(name, help, labelnames, self._lock))  # type: ignore[return-value]

    def gauge(self, name: str, help: str, labelnames: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge(name, help, labelnames, self._lock))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str,
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram(name, help, buckets, self._lock))  # type: ignore[return-value]

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def render(self) -> str:
        with self._lock:
            metrics = list(self._metrics.values())
        lines: List[str] = []
        for metric in metrics:
            with self._lock:
                lines.extend(metric._render_locked())
        return "\n".join(lines) + "\n" if lines else ""


def _canonical_sample_name(name: str, labels: Dict[str, str]) -> str:
    if not labels:
        return name
    body = ",".join('%s="%s"' % (k, labels[k]) for k in sorted(labels))
    return "%s{%s}" % (name, body)


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[^\s]+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape_label_value(value: str) -> str:
    return value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")


def parse_exposition(text: str) -> Dict[str, float]:
    """Parse Prometheus text exposition into ``{sample_name: value}``.

    Sample names are canonicalised with labels sorted by key, e.g.
    ``repro_cells_completed_total{source="cache"}``, so lookups do not
    depend on the producer's label order.  Raises :class:`MetricError`
    on any malformed non-comment line — this is the strictness the
    golden test relies on.
    """
    samples: Dict[str, float] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise MetricError("malformed exposition line: %r" % (raw,))
        labels: Dict[str, str] = {}
        label_body = match.group("labels")
        if label_body:
            consumed = 0
            for pair in _LABEL_PAIR_RE.finditer(label_body):
                labels[pair.group(1)] = _unescape_label_value(pair.group(2))
                consumed = pair.end()
            rest = label_body[consumed:].strip().strip(",")
            if rest:
                raise MetricError("malformed labels in line: %r" % (raw,))
        value_text = match.group("value")
        try:
            if value_text == "+Inf":
                value = math.inf
            elif value_text == "-Inf":
                value = -math.inf
            else:
                value = float(value_text)
        except ValueError:
            raise MetricError("malformed value in line: %r" % (raw,))
        samples[_canonical_sample_name(match.group("name"), labels)] = value
    return samples


def sample_value(samples: Dict[str, float], name: str,
                 default: Optional[float] = None,
                 **labels: str) -> float:
    """Look up a parsed sample by metric name and labels.

    A labelled counter that was never incremented has no sample at all
    in the exposition; pass ``default`` to treat that as a value (the
    conventional choice is ``0``) instead of an error.
    """
    key = _canonical_sample_name(name, {k: str(v) for k, v in labels.items()})
    if key not in samples:
        if default is not None:
            return default
        raise MetricError("no sample %r in exposition" % (key,))
    return samples[key]
