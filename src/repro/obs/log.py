"""Structured JSON-lines logging.

One record per line, one JSON object per record::

    {"ts": 1754700000.123456, "level": "warning", "logger": "repro.service",
     "event": "malformed_request", "pid": 4711, "tenant": "alice", ...}

The module is deliberately self-contained (no ``logging`` handlers, no
global mutable handler tree) so that worker processes spawned by
``ProcessPoolExecutor`` can pick up the parent's configuration from two
environment variables — ``REPRO_LOG_LEVEL`` and ``REPRO_LOG_FILE`` —
without any pickling of logger objects.

Usage::

    from repro.obs import log
    _log = log.get_logger("repro.service")
    _log.info("job_created", tenant="alice", job="job-1", cells=12)
    bound = _log.bind(tenant="alice")
    bound.warning("slow_cell", key="ab12...", seconds=4.2)

Levels: ``debug`` < ``info`` < ``warning`` < ``error`` < ``off``.  The
default level is ``warning`` to stderr, so libraries can log error
paths unconditionally without turning quiet CLI runs noisy.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from typing import Any, Dict, IO, Iterator, List, Optional, Tuple

ENV_LEVEL = "REPRO_LOG_LEVEL"
ENV_FILE = "REPRO_LOG_FILE"

LEVELS: Dict[str, int] = {
    "debug": 10,
    "info": 20,
    "warning": 30,
    "error": 40,
    "off": 100,
}

_lock = threading.Lock()
_level: int = LEVELS["warning"]
_level_name: str = "warning"
_path: Optional[str] = None
_file: Optional[IO[str]] = None
_stream: Optional[IO[str]] = None  # None -> sys.stderr at emit time
_env_loaded = False
_capture_sinks: List[List[Dict[str, Any]]] = []
_once_seen: set = set()


def _coerce_level(level: str) -> Tuple[str, int]:
    name = str(level).strip().lower()
    if name not in LEVELS:
        raise ValueError(
            "unknown log level %r (expected one of %s)"
            % (level, ", ".join(sorted(LEVELS)))
        )
    return name, LEVELS[name]


def configure(
    level: str = "warning",
    path: Optional[str] = None,
    stream: Optional[IO[str]] = None,
    propagate_env: bool = True,
) -> None:
    """Set the process-wide log level and sink.

    ``path`` wins over ``stream``; with neither, records go to stderr.
    With ``propagate_env`` the configuration is mirrored into
    ``REPRO_LOG_LEVEL`` / ``REPRO_LOG_FILE`` so that worker processes
    (which call :func:`configure_from_env` lazily) inherit it.
    """
    global _level, _level_name, _path, _file, _stream, _env_loaded
    name, value = _coerce_level(level)
    with _lock:
        if _file is not None and (path is None or path != _path):
            try:
                _file.close()
            except OSError:
                pass
            _file = None
        _level_name, _level = name, value
        _path = path
        _stream = stream
        if path is not None:
            _file = open(path, "a", encoding="utf-8")
        _env_loaded = True
    if propagate_env:
        os.environ[ENV_LEVEL] = name
        if path is not None:
            os.environ[ENV_FILE] = path
        else:
            os.environ.pop(ENV_FILE, None)


def configure_from_env(force: bool = False) -> None:
    """Adopt ``REPRO_LOG_LEVEL`` / ``REPRO_LOG_FILE`` if present.

    Called lazily on first emit so that pool workers — which re-import
    this module in a fresh interpreter under the ``spawn`` start method
    — log with the parent's settings without explicit plumbing.
    """
    global _env_loaded
    if _env_loaded and not force:
        return
    level = os.environ.get(ENV_LEVEL)
    path = os.environ.get(ENV_FILE)
    if level is None and path is None:
        with _lock:
            _env_loaded = True
        return
    try:
        configure(level=level or "warning", path=path, propagate_env=False)
    except ValueError:
        with _lock:
            _env_loaded = True


def level_name() -> str:
    return _level_name


def _emit(logger: str, level: str, event: str, fields: Dict[str, Any]) -> None:
    if not _env_loaded:
        configure_from_env()
    value = LEVELS[level]
    captured = bool(_capture_sinks)
    if value < _level and not captured:
        return
    record: Dict[str, Any] = {
        "ts": round(time.time(), 6),
        "level": level,
        "logger": logger,
        "event": event,
        "pid": os.getpid(),
    }
    for key, val in fields.items():
        if key not in record:
            record[key] = val
    with _lock:
        for sink in _capture_sinks:
            sink.append(dict(record))
        if value < _level:
            return
        try:
            line = json.dumps(record, sort_keys=False, default=repr)
        except (TypeError, ValueError):
            line = json.dumps({"ts": record["ts"], "level": level, "logger": logger, "event": event, "pid": record["pid"], "malformed_fields": True})
        out = _file if _file is not None else (_stream if _stream is not None else sys.stderr)
        try:
            out.write(line + "\n")
            out.flush()
        except (OSError, ValueError):
            pass


class BoundLogger:
    """A named logger carrying a frozen set of context fields."""

    __slots__ = ("name", "_fields")

    def __init__(self, name: str, fields: Optional[Dict[str, Any]] = None):
        self.name = name
        self._fields: Dict[str, Any] = dict(fields or {})

    def bind(self, **fields: Any) -> "BoundLogger":
        merged = dict(self._fields)
        merged.update(fields)
        return BoundLogger(self.name, merged)

    def _log(self, level: str, event: str, fields: Dict[str, Any]) -> None:
        if self._fields:
            merged = dict(self._fields)
            merged.update(fields)
            fields = merged
        _emit(self.name, level, event, fields)

    def debug(self, event: str, **fields: Any) -> None:
        self._log("debug", event, fields)

    def info(self, event: str, **fields: Any) -> None:
        self._log("info", event, fields)

    def warning(self, event: str, **fields: Any) -> None:
        self._log("warning", event, fields)

    def error(self, event: str, **fields: Any) -> None:
        self._log("error", event, fields)

    def warn_once(self, event: str, **fields: Any) -> bool:
        """Emit a warning only the first time ``(logger, event)`` fires.

        Returns True when the record was emitted, False when it was
        suppressed as a repeat.  Used for per-run conditions (e.g. span
        suppression under the closed-form evaluator) that would
        otherwise spam one line per window.
        """
        key = (self.name, event)
        with _lock:
            if key in _once_seen:
                return False
            _once_seen.add(key)
        self._log("warning", event, fields)
        return True


def get_logger(name: str, **fields: Any) -> BoundLogger:
    return BoundLogger(name, fields or None)


def reset_once() -> None:
    """Forget warn_once deduplication state (test helper)."""
    with _lock:
        _once_seen.clear()


class capture:
    """Context manager collecting records for assertions in tests.

    Records are captured at all levels regardless of the configured
    threshold, without touching the configured sink::

        with log.capture() as records:
            do_work()
        assert any(r["event"] == "cell_error" for r in records)
    """

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []

    def __enter__(self) -> List[Dict[str, Any]]:
        with _lock:
            _capture_sinks.append(self.records)
        return self.records

    def __exit__(self, *exc: Any) -> None:
        with _lock:
            try:
                _capture_sinks.remove(self.records)
            except ValueError:
                pass

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self.records)
