"""Fleet-grade observability for the repro stack.

Four pillars (see docs/observability.md):

- :mod:`repro.obs.log` — structured JSON-lines logging with bound
  context fields (tenant / job / cell key / worker pid).
- :mod:`repro.obs.metrics` — a process-local metrics registry with
  Prometheus text exposition and a minimal in-tree parser.
- :mod:`repro.obs.trace` — cross-process trace stitching: trace-context
  propagation through the sweep service into pool workers, per-cell
  Perfetto span side artifacts, and a stitcher that merges
  tenant -> job -> cell -> worker into one fleet trace.
- :mod:`repro.obs.http` — an optional lightweight HTTP listener
  exposing ``/metrics`` and ``/healthz`` next to the NDJSON service.

Only the dependency-free pillars (log, metrics) are imported eagerly;
``trace``, ``http``, and ``top`` are imported on demand to keep import
cycles out of the worker processes.
"""

from repro.obs import log, metrics

__all__ = ["log", "metrics"]
