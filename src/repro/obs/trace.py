"""Cross-process trace stitching for the sweep service.

The service propagates a *trace context* — ``trace_id`` plus a parent
span id — through submit → :class:`JobManager` →
``ProcessPoolExecutor`` → ``execute_cell_payload``:

* the service (when started with a trace directory) appends one JSONL
  record per job and per cell to a :class:`FleetTraceJournal`;
* pool workers run :func:`execute_cell_payload_traced`, which wraps the
  shared worker entry point and drops a per-cell Perfetto span file —
  a valid standalone Chrome-trace container — as a side artifact next
  to the journal (or under the result cache);
* :func:`stitch_fleet_trace` merges journal + worker span files into
  **one** fleet trace: nested ``X`` slices for tenant → job → cell on
  the service process, worker slices on their real pids, and ``s``/``f``
  flow events linking every level, so Perfetto renders the whole
  multi-tenant run as one connected picture.  The output passes
  :func:`repro.telemetry.tracer.validate_chrome_trace`.

All timestamps in the journal and span files are wall-clock
(``time.time()``) seconds — the only clock that is comparable across
processes; the stitcher rebases everything onto the earliest record so
trace timestamps stay small.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import uuid
from pathlib import Path
from typing import Any, Dict, IO, List, Optional, Tuple, Union

from repro.obs import log

_log = log.get_logger("repro.obs.trace")

PathLike = Union[str, Path]

JOURNAL_NAME = "journal.jsonl"
WORKER_SPAN_SUFFIX = ".wspan.json"


def new_trace_id() -> str:
    return uuid.uuid4().hex


def new_span_id() -> str:
    return uuid.uuid4().hex[:16]


class FleetTraceJournal:
    """Append-only JSONL journal of job/cell spans, written by the
    service's event loop.  Records are flushed per write (they are rare
    relative to cell work) so a crashed service still stitches."""

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / JOURNAL_NAME
        self.spans_dir = self.root / "workers"
        self._fh: Optional[IO[str]] = open(self.path, "a", encoding="utf-8")
        self.record(kind="meta", t=time.time(),
                    spans_dir=str(self.spans_dir))

    def record(self, **fields: Any) -> None:
        if self._fh is None:
            return
        try:
            self._fh.write(json.dumps(fields, sort_keys=True) + "\n")
            self._fh.flush()
        except (OSError, ValueError):
            _log.warning("journal_write_failed", path=str(self.path))
            self.close()

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None


def worker_span_path(spans_dir: PathLike, key: str) -> Path:
    return Path(spans_dir) / f"{key}{WORKER_SPAN_SUFFIX}"


def write_worker_span(cell, ctx: Dict, t0: float, t1: float,
                      error: Optional[str]) -> Optional[Path]:
    """Write one cell's worker-side Perfetto span file (atomic).

    The file is itself a loadable Chrome-trace container (epoch-µs
    timestamps); ``otherData`` carries the exact trace context so the
    stitcher does not have to parse it back out of event args.
    """
    spans_dir = ctx.get("spans_dir")
    if not spans_dir:
        return None
    pid = os.getpid()
    name = f"cell {cell.scheme_key}/{cell.workload_name}"
    event = {
        "name": name,
        "cat": "fleet.worker",
        "ph": "X",
        "ts": t0 * 1e6,
        "dur": max(t1 - t0, 1e-9) * 1e6,
        "pid": pid,
        "tid": 0,
        "args": {"key": ctx.get("key"), "trace_id": ctx.get("trace_id"),
                 "failed": error is not None},
    }
    container = {
        "traceEvents": [event],
        "displayTimeUnit": "ms",
        "otherData": {
            "kind": "worker_span",
            "key": ctx.get("key"),
            "trace_id": ctx.get("trace_id"),
            "parent_id": ctx.get("parent_id"),
            "span_id": new_span_id(),
            "name": name,
            "pid": pid,
            "t0": t0,
            "t1": t1,
            "failed": error is not None,
        },
    }
    directory = Path(spans_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = worker_span_path(directory, ctx.get("key", "unknown"))
    fd, tmp = tempfile.mkstemp(prefix=".wspan.", suffix=".tmp",
                               dir=directory)
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(container, fh, sort_keys=True)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise
    return path


def execute_cell_payload_traced(cell, ctx: Dict) -> Tuple[Optional[Dict], Optional[str]]:
    """Pool entry point wrapping the shared ``execute_cell_payload``
    with trace-context emission.  Top-level (picklable) and returning
    the exact same payload shape, so the service can swap it in per
    call without touching the result path.  Span-file emission must
    never fail the cell — observability is strictly additive."""
    from repro.experiments.executor import execute_cell_payload

    t0 = time.time()
    result_dict, error = execute_cell_payload(cell)
    t1 = time.time()
    try:
        write_worker_span(cell, ctx, t0, t1, error)
    except Exception as exc:
        _log.warning("worker_span_write_failed", key=ctx.get("key"),
                     error=repr(exc))
    return result_dict, error


# ----------------------------------------------------------------------
# stitching
# ----------------------------------------------------------------------

def _read_journal(journal_path: Path) -> List[Dict]:
    records = []
    with open(journal_path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict):
                records.append(record)
    return records


def _load_worker_spans(spans_dir: Path) -> Dict[str, Dict]:
    """``{cell key: otherData}`` for every worker span file present."""
    spans: Dict[str, Dict] = {}
    if not spans_dir.is_dir():
        return spans
    for path in sorted(spans_dir.glob(f"*{WORKER_SPAN_SUFFIX}")):
        try:
            with open(path, encoding="utf-8") as fh:
                data = json.load(fh)
            other = data.get("otherData", {})
            key = other.get("key")
            if key:
                spans[key] = other
        except (OSError, ValueError):
            continue
    return spans


def stitch_fleet_trace(journal_path: PathLike,
                       spans_dir: Optional[PathLike] = None) -> Dict:
    """Merge a fleet journal and its worker span files into one
    Chrome-trace container with tenant → job → cell → worker flows.

    Layout: pid 0 is the sweep service — one thread track per tenant,
    one per job, one per cell slot; each worker process keeps its real
    pid.  Flow events (``s``/``f`` pairs, binding-point ``e``) connect
    the levels, including deduped cells that share one worker span.
    """
    journal_path = Path(journal_path)
    if journal_path.is_dir():
        journal_path = journal_path / JOURNAL_NAME
    records = _read_journal(journal_path)
    if not records:
        raise ValueError(f"{journal_path}: empty or unreadable journal")

    meta = next((r for r in records if r.get("kind") == "meta"), {})
    if spans_dir is None:
        spans_dir = meta.get("spans_dir") or (journal_path.parent / "workers")
    workers = _load_worker_spans(Path(spans_dir))

    jobs = [r for r in records if r.get("kind") == "job"]
    cells = [r for r in records if r.get("kind") == "cell"]
    times = ([r.get("t", 0.0) for r in (meta,) if r]
             + [r["t0"] for r in jobs + cells if "t0" in r]
             + [w["t0"] for w in workers.values() if "t0" in w])
    if not times:
        raise ValueError(f"{journal_path}: journal has no timed records")
    base = min(times)

    def ts(t: float) -> float:
        return max(0.0, (t - base) * 1e6)

    def dur(t0: float, t1: float) -> float:
        return max((t1 - t0) * 1e6, 1.0)

    events: List[Dict] = []
    service_pid = 0
    events.append({"name": "process_name", "ph": "M", "ts": 0,
                   "pid": service_pid, "tid": 0,
                   "args": {"name": "sweep-service"}})

    # --- tenant tracks -------------------------------------------------
    tenants: Dict[str, Dict] = {}
    for job in jobs:
        tenant = job.get("tenant", "anonymous")
        rec = tenants.setdefault(
            tenant, {"t0": job["t0"], "t1": job["t1"], "jobs": 0})
        rec["t0"] = min(rec["t0"], job["t0"])
        rec["t1"] = max(rec["t1"], job["t1"])
        rec["jobs"] += 1
    tenant_tid = {t: i + 1 for i, t in enumerate(sorted(tenants))}
    job_tid: Dict[str, int] = {}
    next_tid = len(tenant_tid) + 1
    for job in jobs:
        job_tid[job["job_id"]] = next_tid
        next_tid += 1
    cell_tid_base = next_tid

    for tenant, rec in sorted(tenants.items()):
        tid = tenant_tid[tenant]
        events.append({"name": "thread_name", "ph": "M", "ts": 0,
                       "pid": service_pid, "tid": tid,
                       "args": {"name": f"tenant {tenant}"}})
        events.append({
            "name": f"tenant {tenant}", "cat": "fleet.tenant", "ph": "X",
            "ts": ts(rec["t0"]), "dur": dur(rec["t0"], rec["t1"]),
            "pid": service_pid, "tid": tid,
            "args": {"jobs": rec["jobs"]},
        })

    # --- job tracks + tenant->job flows --------------------------------
    job_by_id = {}
    for job in jobs:
        job_by_id[job["job_id"]] = job
        tid = job_tid[job["job_id"]]
        tenant = job.get("tenant", "anonymous")
        events.append({"name": "thread_name", "ph": "M", "ts": 0,
                       "pid": service_pid, "tid": tid,
                       "args": {"name": f"job {job['job_id']} ({tenant})"}})
        events.append({
            "name": f"job {job['job_id']}", "cat": "fleet.job", "ph": "X",
            "ts": ts(job["t0"]), "dur": dur(job["t0"], job["t1"]),
            "pid": service_pid, "tid": tid,
            "args": {"tenant": tenant, "status": job.get("status"),
                     "cells": job.get("cells"),
                     "trace_id": job.get("trace_id")},
        })
        flow_id = f"{job.get('trace_id', '')}:{job['job_id']}"
        events.append({"name": "tenant->job", "cat": "fleet.flow",
                       "ph": "s", "id": flow_id, "ts": ts(job["t0"]),
                       "pid": service_pid, "tid": tenant_tid[tenant]})
        events.append({"name": "tenant->job", "cat": "fleet.flow",
                       "ph": "f", "bp": "e", "id": flow_id,
                       "ts": ts(job["t0"]), "pid": service_pid,
                       "tid": tid})

    # --- cell tracks + job->cell + cell->worker flows ------------------
    worker_pids_named = set()
    for offset, cell in enumerate(cells):
        tid = cell_tid_base + offset
        job_id = cell.get("job_id")
        job = job_by_id.get(job_id)
        label = f"cell {cell.get('index')} [{cell.get('source', '?')}]"
        events.append({"name": "thread_name", "ph": "M", "ts": 0,
                       "pid": service_pid, "tid": tid,
                       "args": {"name": f"{job_id}/{cell.get('index')}"}})
        events.append({
            "name": label, "cat": "fleet.cell", "ph": "X",
            "ts": ts(cell["t0"]), "dur": dur(cell["t0"], cell["t1"]),
            "pid": service_pid, "tid": tid,
            "args": {"job": job_id, "key": cell.get("key"),
                     "source": cell.get("source"),
                     "status": cell.get("status"),
                     "trace_id": cell.get("trace_id")},
        })
        if job is not None:
            flow_id = f"{cell.get('trace_id', '')}:{job_id}:{cell.get('index')}"
            events.append({"name": "job->cell", "cat": "fleet.flow",
                           "ph": "s", "id": flow_id, "ts": ts(cell["t0"]),
                           "pid": service_pid, "tid": job_tid[job_id]})
            events.append({"name": "job->cell", "cat": "fleet.flow",
                           "ph": "f", "bp": "e", "id": flow_id,
                           "ts": ts(cell["t0"]), "pid": service_pid,
                           "tid": tid})
        worker = workers.get(cell.get("key"))
        if worker is None:
            continue
        # clamp the flow start inside the cell slice so the arrow leaves
        # a live slice even when the worker started before this (dedup)
        # cell attached to the in-flight execution
        start = min(max(worker["t0"], cell["t0"]), cell["t1"])
        flow_id = (f"{cell.get('trace_id', '')}:{job_id}:"
                   f"{cell.get('index')}:w")
        events.append({"name": "cell->worker", "cat": "fleet.flow",
                       "ph": "s", "id": flow_id, "ts": ts(start),
                       "pid": service_pid, "tid": tid})
        events.append({"name": "cell->worker", "cat": "fleet.flow",
                       "ph": "f", "bp": "e", "id": flow_id,
                       "ts": ts(worker["t0"]), "pid": worker["pid"],
                       "tid": 0})
        worker_pids_named.add(worker["pid"])

    # --- worker slices --------------------------------------------------
    for key, worker in sorted(workers.items()):
        events.append({
            "name": worker.get("name", f"cell {key[:12]}"),
            "cat": "fleet.worker", "ph": "X",
            "ts": ts(worker["t0"]), "dur": dur(worker["t0"], worker["t1"]),
            "pid": worker["pid"], "tid": 0,
            "args": {"key": key, "failed": worker.get("failed", False),
                     "trace_id": worker.get("trace_id")},
        })
    for pid in sorted(worker_pids_named
                      | {w["pid"] for w in workers.values()}):
        events.append({"name": "process_name", "ph": "M", "ts": 0,
                       "pid": pid, "tid": 0,
                       "args": {"name": f"worker pid {pid}"}})

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "kind": "fleet_trace",
            "journal": str(journal_path),
            "tenants": len(tenants),
            "jobs": len(jobs),
            "cells": len(cells),
            "worker_spans": len(workers),
        },
    }


def write_fleet_trace(journal_path: PathLike, out_path: PathLike,
                      spans_dir: Optional[PathLike] = None) -> Dict:
    """Stitch and write; returns the container's ``otherData`` summary."""
    container = stitch_fleet_trace(journal_path, spans_dir=spans_dir)
    from repro.telemetry.tracer import validate_chrome_trace

    validate_chrome_trace(container["traceEvents"])
    out_path = Path(out_path)
    if out_path.parent != Path(""):
        out_path.parent.mkdir(parents=True, exist_ok=True)
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(container, fh, sort_keys=True)
    return container["otherData"]
