"""End-to-end system: cores -> (optional cache hierarchy) -> scheme ->
DRAM devices, in the paper's 16-copy rate mode.

``System.run`` builds everything from a :class:`SystemConfig`, a scheme
factory and a workload spec, steps the discrete-event engine until every
core finishes its trace, and returns a :class:`RunResult` with the
figures of merit the paper reports: execution time (speedups are ratios
of these), access rate, the NM share of demand bandwidth (Fig. 8), and
the energy/EDP breakdown.

Two trace modes:

* ``"miss"`` (default) — the workload model emits the LLC miss stream
  directly; fast, used by the benchmark harness.
* ``"reference"`` — references run through the modelled L1/L2 hierarchy;
  slower, used by integration tests and the Table III bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.cache.hierarchy import CacheHierarchy, HierarchyOutcome
from repro.cpu.controller import ControllerStats, FlatMemoryController
from repro.cpu.core import Core, CoreStats
from repro.cpu.mshr import MSHRFile
from repro.dram.channel import ChannelStats
from repro.dram.device import MemoryDevice
from repro.energy.model import EnergyBreakdown, EnergyModel
from repro.schemes.base import MemoryScheme, SchemeStats
from repro.sim.config import SystemConfig
from repro.sim.engine import Engine, SimulationError
from repro.telemetry import Telemetry
from repro.workloads.model import WorkloadModel, WorkloadSpec
from repro.xmem.address import AddressSpace
from repro.xmem.translation import FrameAllocator, PageTable

#: NM device tail reserved for remap metadata (SILC-FM's entries and
#: CAMEO's burst-extended tag bytes live here address-wise).
METADATA_REGION_BYTES_PER_FRAME = 32

SchemeFactory = Callable[[AddressSpace, SystemConfig], MemoryScheme]


@dataclass
class RunResult:
    """Everything a benchmark needs from one simulation."""

    scheme_name: str
    workload_name: str
    elapsed_cycles: float
    core_stats: List[CoreStats]
    scheme_stats: SchemeStats
    controller_stats: ControllerStats
    nm_stats: ChannelStats
    fm_stats: ChannelStats
    energy: EnergyBreakdown
    edp: float
    extras: Dict[str, float] = field(default_factory=dict)
    #: telemetry snapshot (:meth:`Telemetry.snapshot`) when the run had
    #: ``telemetry_window > 0``; None otherwise.  Omitted entirely from
    #: the JSON round-trip when None so disabled-mode cache entries stay
    #: bit-identical to pre-telemetry ones.
    telemetry: Optional[Dict] = None

    @property
    def access_rate(self) -> float:
        return self.scheme_stats.access_rate

    @property
    def nm_demand_fraction(self) -> float:
        return self.controller_stats.nm_demand_fraction

    @property
    def total_instructions(self) -> int:
        return sum(c.instructions for c in self.core_stats)

    def speedup_over(self, baseline: "RunResult") -> float:
        """The paper's figure of merit: baseline time / this time."""
        if self.elapsed_cycles <= 0:
            raise ValueError("run did not execute")
        return baseline.elapsed_cycles / self.elapsed_cycles

    # ------------------------------------------------------------------
    # JSON round-trip (the experiment executor's on-disk result cache)
    # ------------------------------------------------------------------
    #: extras keys that are *observations of the runtime*, not of the
    #: simulated machine: the two-tier clock attribution counters
    #: (``cf.*``) and the span-suppression flag.  They differ between
    #: the scalar and batched twins by construction, so the canonical
    #: wire/cache form excludes them — exactly like ``telemetry=None``
    #: omission — keeping every golden and equivalence digest
    #: byte-identical with observability enabled.
    _OBSERVATION_PREFIX = "cf."
    _OBSERVATION_KEYS = frozenset({"spans_suppressed"})

    @classmethod
    def _is_observation_key(cls, key: str) -> bool:
        return (key.startswith(cls._OBSERVATION_PREFIX)
                or key in cls._OBSERVATION_KEYS)

    def to_dict(self) -> Dict:
        """A JSON-serialisable dict that :meth:`from_dict` inverts exactly
        (every stats field is an int/float, which ``json`` round-trips
        bit-identically).  Observation-only extras (``cf.*``,
        ``spans_suppressed``) are in-memory only and excluded here."""
        import dataclasses

        data = {
            "scheme_name": self.scheme_name,
            "workload_name": self.workload_name,
            "elapsed_cycles": self.elapsed_cycles,
            "core_stats": [dataclasses.asdict(c) for c in self.core_stats],
            "scheme_stats": dataclasses.asdict(self.scheme_stats),
            "controller_stats": dataclasses.asdict(self.controller_stats),
            "nm_stats": dataclasses.asdict(self.nm_stats),
            "fm_stats": dataclasses.asdict(self.fm_stats),
            "energy": dataclasses.asdict(self.energy),
            "edp": self.edp,
            "extras": {k: v for k, v in self.extras.items()
                       if not self._is_observation_key(k)},
        }
        if self.telemetry is not None:
            data["telemetry"] = self.telemetry
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "RunResult":
        return cls(
            scheme_name=data["scheme_name"],
            workload_name=data["workload_name"],
            elapsed_cycles=data["elapsed_cycles"],
            core_stats=[CoreStats(**c) for c in data["core_stats"]],
            scheme_stats=SchemeStats(**data["scheme_stats"]),
            controller_stats=ControllerStats(**data["controller_stats"]),
            nm_stats=ChannelStats(**data["nm_stats"]),
            fm_stats=ChannelStats(**data["fm_stats"]),
            energy=EnergyBreakdown(**data["energy"]),
            edp=data["edp"],
            extras=dict(data["extras"]),
            telemetry=data.get("telemetry"),
        )


class System:
    """One complete simulated machine."""

    def __init__(self, config: SystemConfig, scheme_factory: SchemeFactory,
                 workload: WorkloadSpec, misses_per_core: int,
                 alloc_policy: str = "interleaved",
                 mode: str = "miss",
                 seed: Optional[int] = None,
                 workload_per_core: Optional[List[WorkloadSpec]] = None,
                 warmup_fraction: float = 0.0) -> None:
        if mode not in ("miss", "reference"):
            raise ValueError(f"unknown trace mode {mode!r}")
        if misses_per_core < 1:
            raise ValueError("misses_per_core must be >= 1")
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        self.config = config
        self.workload = workload
        self.mode = mode
        seed = config.seed if seed is None else seed
        #: misses (system-wide) discarded before statistics collection
        #: starts; the paper measures steady-state Simpoint regions, so
        #: cold-start install traffic should not pollute the figures.
        self._warmup_misses = int(
            warmup_fraction * misses_per_core * config.cores)
        self._warmup_done_at: Optional[float] = None

        self.engine = Engine()
        self.space = AddressSpace(config.nm_bytes, config.fm_bytes)
        self.nm_device = MemoryDevice(
            self.engine, config.nm_timings,
            config.nm_bytes + self.space.nm_blocks * METADATA_REGION_BYTES_PER_FRAME,
            name="nm",
            metadata_base=config.nm_bytes,
        )
        self.fm_device = MemoryDevice(
            self.engine, config.fm_timings, config.fm_bytes, name="fm")
        self.scheme = scheme_factory(self.space, config)
        self.oracle = None
        if config.check_interval > 0:
            from repro.validate import ValidationOracle

            self.oracle = ValidationOracle(
                self.scheme, check_every=config.check_interval)
        #: batch engine (repro.cpu.batch): vectorized trace generation +
        #: allocation-lean data plane, bit-identical to the scalar path
        #: (miss mode only; reference mode always runs scalar).
        use_batch = config.batch_window > 0 and mode == "miss"
        self._use_batch = use_batch
        #: set by the closed-form evaluator if it ever runs with span
        #: tracing configured: spans would silently record nothing, so
        #: the condition is surfaced as an explicit ``spans_suppressed``
        #: extras flag (observation-only; excluded from ``to_dict``).
        self._spans_suppressed = False
        #: two-tier clock attribution counters (fused vs generic heap
        #: dispatch), populated by ``repro.sim.window.run_closed_form``.
        self.clock_stats = None
        if use_batch:
            from repro.cpu.batch import BatchCore, BatchFlatMemoryController
            from repro.sim.window import ClockStats

            self.clock_stats = ClockStats()

            controller_cls = BatchFlatMemoryController
            # fuse each channel's queued data plane (instance-level
            # rebinding; the class-level scalar methods stay untouched,
            # so scalar runs are unaffected)
            for device in (self.nm_device, self.fm_device):
                for channel in device.channels:
                    channel.enable_turbo()
                if device.meta_channel is not None:
                    device.meta_channel.enable_turbo()
        else:
            controller_cls = FlatMemoryController
        self.controller = controller_cls(
            self.engine, self.scheme, self.nm_device, self.fm_device,
            oracle=self.oracle)
        #: MSHR file between the cores and the controller; None at the
        #: compatibility value (``mshr_entries = 0``), where misses go
        #: straight to ``handle_miss`` and results are bit-identical to
        #: the pre-MSHR design.
        self.mshr: Optional[MSHRFile] = None
        if config.mshr_entries > 0:
            self.mshr = MSHRFile(
                self.engine, config.mshr_entries, self.controller)
            if use_batch:
                # batch data plane recycles transactions; the scalar
                # reference path keeps its per-miss allocations.
                self.mshr.enable_pooling()
        send_miss = (self.mshr.issue if self.mshr is not None
                     else self.controller.handle_miss)
        self.hierarchy = (
            CacheHierarchy(config.caches, config.cores) if mode == "reference" else None
        )

        allocator = FrameAllocator(self.space, policy=alloc_policy, seed=seed)
        specs = workload_per_core or [workload] * config.cores
        if len(specs) != config.cores:
            raise ValueError("need one workload spec per core")
        self.cores: List[Core] = []
        self.page_tables: List[PageTable] = []
        self._finished = 0
        self._halt_on_done = False
        for core_id, spec in enumerate(specs):
            table = PageTable(allocator, asid=core_id)
            self.page_tables.append(table)
            model = WorkloadModel(spec, seed=seed * 1000 + core_id)
            if use_batch:
                core = BatchCore(
                    self.engine, core_id,
                    model.miss_batches(misses_per_core, config.batch_window),
                    issue_width=config.core.issue_width,
                    max_outstanding=config.core.max_outstanding_misses,
                    translate=table.translate,
                    send_miss=send_miss,
                    send_writeback=self.controller.handle_writeback,
                    on_finished=self._core_finished,
                )
                self.cores.append(core)
                continue
            if mode == "miss":
                trace = model.miss_stream(misses_per_core)
                classify = None
            else:
                trace = model.reference_stream(misses_per_core)
                classify = self._classify
            core = Core(
                self.engine, core_id, trace,
                issue_width=config.core.issue_width,
                max_outstanding=config.core.max_outstanding_misses,
                translate=table.translate,
                send_miss=send_miss,
                send_writeback=self.controller.handle_writeback,
                classify=classify,
                on_finished=self._core_finished,
            )
            self.cores.append(core)

        self.telemetry: Optional[Telemetry] = None
        self.spans = None
        if config.telemetry_window > 0:
            self._setup_telemetry()
        if config.span_sample_rate > 0:
            # config validation guarantees telemetry exists here
            from repro.telemetry.spans import SpanRecorder

            self.spans = SpanRecorder(
                config.span_sample_rate, self.engine,
                tracer=self.telemetry.tracer)
            self.controller.spans = self.spans
            if self.mshr is not None:
                self.mshr.spans = self.spans

    # ------------------------------------------------------------------
    def _setup_telemetry(self) -> None:
        """Build the hub and register every component's probes.

        All probes are pull-based closures over counters the components
        already maintain, so the only simulation-visible change is the
        periodic sampler event — which reads state and never mutates it,
        keeping the figures of merit identical to an unsampled run.
        """
        hub = Telemetry(
            window_cycles=self.config.telemetry_window,
            cycles_per_us=self.config.core.frequency_ghz * 1000.0,
        )
        self.telemetry = hub
        self.scheme.attach_telemetry(hub)
        self.controller.attach_telemetry(hub)
        self.nm_device.attach_telemetry(hub)
        self.fm_device.attach_telemetry(hub)
        if self.oracle is not None:
            self.oracle.attach_telemetry(hub)
        if self.mshr is not None:
            self.mshr.attach_telemetry(hub)
        cores = self.cores
        hub.meter("cpu.instructions",
                  lambda: sum(c.stats.instructions for c in cores))
        hub.meter("cpu.llc_misses",
                  lambda: sum(c.stats.misses_issued for c in cores))
        hub.meter("cpu.misses_retired",
                  lambda: sum(c.stats.misses_retired for c in cores))
        hub.meter("cpu.stall_events",
                  lambda: sum(c.stats.stall_events for c in cores))
        hub.gauge("cpu.finished_cores",
                  lambda: float(sum(c.finished for c in cores)))
        if (self.clock_stats is not None and self.oracle is None
                and self.config.span_sample_rate == 0):
            # two-tier clock attribution, only when the closed-form
            # evaluator can actually engage (batch mode, no spans, no
            # oracle — the construction-time half of System.run's
            # use_cf gate).  Span/oracle runs keep generic dispatch, so
            # registering always-zero clock.* meters there would only
            # break their telemetry digest against the scalar twin.
            clock = self.clock_stats
            ctrl = self.controller
            hub.meter("clock.fused", lambda: clock.fused)
            hub.meter("clock.generic", lambda: clock.generic)
            hub.meter("clock.fast_accepted", lambda: ctrl.fast_accepted)
            hub.meter("clock.fast_declined", lambda: ctrl.fast_declined)
        # sampler stops with the cores so it cannot keep a drained
        # simulation alive (or mask a lost-completion-callback bug)
        hub.attach(self.engine,
                   while_=lambda: self._finished < len(self.cores))

    # ------------------------------------------------------------------
    def _classify(self, paddr: int, is_write: bool, core_id: int) -> HierarchyOutcome:
        return self.hierarchy.access(core_id, paddr, is_write)

    def _core_finished(self, core: Core) -> None:
        self._finished += 1
        if self._halt_on_done and self._finished == len(self.cores):
            # stop the engine right after this event: remaining queued
            # events (in-flight background traffic, samplers) stay
            # unexecuted, exactly as the old per-event step loop did.
            self.engine.halt()

    def _check_warmup(self) -> None:
        if (self._warmup_done_at is None
                and self.scheme.stats.misses >= self._warmup_misses):
            self._warmup_done_at = self.engine.now
            self.scheme.stats.reset()
            self.controller.stats.reset()
            if self.mshr is not None:
                self.mshr.stats.reset()
            if self.spans is not None:
                self.spans.reset_stats()
            for device in (self.nm_device, self.fm_device):
                for channel in device.channels:
                    channel.stats.reset()
                if device.meta_channel is not None:
                    device.meta_channel.stats.reset()

    # ------------------------------------------------------------------
    def run(self, max_events: Optional[int] = None) -> RunResult:
        """Run the engine until every core retires its whole trace.

        The warmup region steps event-by-event (the reset point depends
        on a per-event miss-count check); the steady-state region runs
        inside ``Engine.run``'s fast dispatch loop and halts the moment
        the last core finishes.  ``max_events`` uses the engine's
        watchdog semantics: exactly ``max_events`` dispatches are
        allowed, dispatching one more raises.
        """
        import gc

        for core in self.cores:
            core.start()
        engine = self.engine
        total = len(self.cores)
        dispatched = 0
        warming = self._warmup_misses > 0
        # the batch data plane recycles its hot objects, so cyclic-GC
        # passes over the event loop are pure overhead; collection is
        # suspended for the run (refcount frees are unaffected, and no
        # simulation state observes the collector).
        collecting = self._use_batch and gc.isenabled()
        if collecting:
            gc.disable()
        #: two-tier clock (repro.sim.window): the closed-form window
        #: evaluator replaces Engine.run's generic dispatch whenever the
        #: dense-shape transcriptions apply — batch mode with no oracle,
        #: no span tracing, and no watchdog (the evaluator has no
        #: max_events accounting; validation runs keep generic dispatch).
        use_cf = (self._use_batch and max_events is None
                  and self.oracle is None and self.spans is None)
        if use_cf:
            from repro.sim.window import run_closed_form
        elif self._use_batch:
            from repro.obs import log as obs_log

            obs_log.get_logger("repro.cpu.system").debug(
                "closed_form_disabled",
                scheme=self.scheme.name,
                spans=self.spans is not None,
                oracle=self.oracle is not None,
                watchdog=max_events is not None,
            )
        try:
            if warming and self._use_batch and max_events is None:
                # batch engine: the warmup reset point is a *miss-count*
                # crossing, which only ever moves inside a demand-dispatch
                # event — so the controller halts the fast loop at the
                # crossing event instead of the per-event step-and-check
                # loop.  The engine state at the reset is identical:
                # Engine.run stops right after the event during which the
                # count crossed, exactly where the step loop's check
                # would have fired.
                self.controller.arm_warmup_halt(self._warmup_misses)
                if use_cf:
                    # the evaluator performs the wrapper's check inline
                    # on fused dispatches; the armed wrapper still
                    # covers generically-dispatched ones.
                    run_closed_form(self, self._warmup_misses)
                else:
                    engine.run()
                self._check_warmup()
                if self._warmup_done_at is None:
                    raise SimulationError(
                        f"event queue drained with {total - self._finished}"
                        " cores unfinished (lost completion callback?)"
                    )
                warming = False
            while warming and self._finished < total:
                if max_events is not None and dispatched >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; likely a livelock"
                    )
                if not engine.step():
                    raise SimulationError(
                        f"event queue drained with {total - self._finished}"
                        " cores unfinished (lost completion callback?)"
                    )
                dispatched += 1
                self._check_warmup()
                warming = self._warmup_done_at is None
            if self._finished < total:
                self._halt_on_done = True
                try:
                    if use_cf:
                        run_closed_form(self)
                    else:
                        engine.run(max_events=(None if max_events is None
                                               else max_events - dispatched))
                finally:
                    self._halt_on_done = False
                if self._finished < total:
                    raise SimulationError(
                        f"event queue drained with {total - self._finished}"
                        " cores unfinished (lost completion callback?)"
                    )
        finally:
            if collecting:
                gc.enable()
        finish = max(core.stats.finish_time for core in self.cores)
        elapsed = finish - (self._warmup_done_at or 0.0)
        if self.oracle is not None:
            # end-of-run bijection proof: every subblock accounted for.
            self.oracle.full_check()
        if self.telemetry is not None:
            # flush the partial final window (the periodic sampler
            # stopped when the last core finished); drain() is
            # idempotent, so a run that halted exactly on a window
            # boundary does not get a duplicate zero-width sample
            self.telemetry.drain()
        return self._result(elapsed)

    def _result(self, elapsed: float) -> RunResult:
        nm_stats = self.nm_device.stats()
        fm_stats = self.fm_device.stats()
        energy_model = EnergyModel(cpu_ghz=self.config.core.frequency_ghz)
        energy = energy_model.breakdown(
            nm_stats.bytes_total, fm_stats.bytes_total, elapsed)
        edp = energy.total_joules * energy_model.cycles_to_seconds(elapsed)
        extras = {
            "nm_utilization": self.nm_device.utilization(elapsed),
            "fm_utilization": self.fm_device.utilization(elapsed),
            "page_reclaims": float(
                sum(t.reclaims for t in self.page_tables)),
        }
        if self.oracle is not None:
            extras["oracle_accesses_checked"] = float(
                self.oracle.accesses_checked)
            extras["oracle_full_scans"] = float(self.oracle.full_scans)
        if self.mshr is not None:
            # only when the MSHR file exists, so compatibility-mode
            # results stay bit-identical to pre-MSHR runs.
            extras["mshr_allocations"] = float(self.mshr.stats.allocations)
            extras["mshr_coalesced"] = float(self.mshr.stats.coalesced)
            extras["mshr_structural_stalls"] = float(
                self.mshr.stats.structural_stalls)
            extras["mshr_peak_occupancy"] = float(
                self.mshr.stats.peak_occupancy)
        if self.clock_stats is not None:
            # two-tier clock attribution (observation-only keys: the
            # ``cf.`` prefix is excluded from ``to_dict``, so the cached
            # wire form of a batched run still matches its scalar twin)
            ctrl = self.controller
            consults = ctrl.fast_accepted + ctrl.fast_declined
            if self.clock_stats.dispatched or consults:
                extras.update(self.clock_stats.as_extras())
                extras["cf.fast_accepted"] = float(ctrl.fast_accepted)
                extras["cf.fast_declined"] = float(ctrl.fast_declined)
                if consults:
                    extras["cf.decline_rate"] = ctrl.fast_declined / consults
        if self._spans_suppressed:
            extras["spans_suppressed"] = 1.0
        telemetry_snap = None
        if self.telemetry is not None:
            telemetry_snap = self.telemetry.snapshot()
            if self.spans is not None:
                spans_snap = self.spans.snapshot()
                spans_snap["rows_declared"] = list(self.scheme.SPAN_ROWS)
                # the controller's post-warmup demand-latency total: the
                # reconciliation target for the span stage sums (repro
                # analyze reports the coverage ratio)
                spans_snap["demand_stall_cycles"] = \
                    self.controller.stats.total_miss_latency
                telemetry_snap["spans"] = spans_snap
        return RunResult(
            scheme_name=self.scheme.name,
            workload_name=self.workload.name,
            elapsed_cycles=elapsed,
            core_stats=[core.stats for core in self.cores],
            scheme_stats=self.scheme.stats,
            controller_stats=self.controller.stats,
            nm_stats=nm_stats,
            fm_stats=fm_stats,
            energy=energy,
            edp=edp,
            extras=extras,
            telemetry=telemetry_snap,
        )
