"""The flat-memory controller: executes a scheme's access plans on the
two memory devices.

Responsibilities:

* drive each :class:`~repro.cpu.mshr.MemoryRequest` transaction through
  its plan's critical-path stages (stage *i+1* issues when stage *i*'s
  last operation completes) at demand priority, then wake the
  transaction's waiters;
* fire background traffic (swaps, migrations, prefetches, writebacks)
  without blocking anyone — it still competes for channel bandwidth;
* drive epoch-based schemes (HMA): run the scheme's epoch at its period,
  issue the bulk-migration traffic and stall *all* demand requests for
  the OS-overhead window (context switch + PTE/TLB work);
* account demand bytes per level for the Fig. 8 bandwidth-split result.

The stage walk is an explicit state machine on the transaction itself
(``stage_index`` / ``remaining_ops`` fields, updated by
``MemoryRequest.op_done``) rather than a chain of nested closures: one
transaction object per miss carries everything, and the oracle and
telemetry hooks fire on its lifecycle events (dispatch, completion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.cpu.mshr import COMPLETE, DISPATCHED, STAGING, MemoryRequest
from repro.dram.device import MemoryDevice
from repro.dram.request import Priority
from repro.schemes.base import AccessPlan, Level, MemoryScheme
from repro.sim.engine import Engine
from repro.telemetry.spans import stage_label

if TYPE_CHECKING:
    from repro.validate.oracle import ValidationOracle


@dataclass
class ControllerStats:
    """Demand/background accounting.  ``reset()`` supports warmup
    discarding (the paper measures steady-state Simpoint regions)."""

    demand_nm_bytes: int = 0
    demand_fm_bytes: int = 0
    background_nm_bytes: int = 0
    background_fm_bytes: int = 0
    writebacks: int = 0
    epoch_stall_cycles: float = 0.0
    total_miss_latency: float = 0.0
    misses_completed: int = 0

    @property
    def nm_demand_fraction(self) -> float:
        """Fraction of demand bandwidth served by NM (Fig. 8's metric)."""
        total = self.demand_nm_bytes + self.demand_fm_bytes
        return self.demand_nm_bytes / total if total else 0.0

    @property
    def mean_miss_latency(self) -> float:
        if not self.misses_completed:
            return 0.0
        return self.total_miss_latency / self.misses_completed

    def reset(self) -> None:
        """Zero every counter (keeps the object identity stable)."""
        self.demand_nm_bytes = 0
        self.demand_fm_bytes = 0
        self.background_nm_bytes = 0
        self.background_fm_bytes = 0
        self.writebacks = 0
        self.epoch_stall_cycles = 0.0
        self.total_miss_latency = 0.0
        self.misses_completed = 0


class FlatMemoryController:
    """Glue between the LLC miss stream, a scheme, and the devices."""

    def __init__(self, engine: Engine, scheme: MemoryScheme,
                 nm_device: MemoryDevice, fm_device: MemoryDevice,
                 oracle: Optional["ValidationOracle"] = None) -> None:
        self._engine = engine
        self.scheme = scheme
        self._nm = nm_device
        self._fm = fm_device
        #: differential oracle (repro.validate); None in normal runs.
        #: Hooked on transaction lifecycle events (dispatch), so it sees
        #: the same metadata snapshots the scheme does,
        #: stall-rescheduling included.
        self.oracle = oracle
        self.stats = ControllerStats()
        #: transactions dispatched into the scheme but not yet complete.
        self.inflight = 0
        #: span recorder (:class:`repro.telemetry.spans.SpanRecorder`)
        #: when span tracing is enabled; None keeps the hot path to
        #: ``is None`` checks on transaction lifecycle events.
        self.spans = None
        self._stall_until = 0.0
        period = scheme.epoch_period_cycles()
        if period is not None:
            engine.schedule(period, self._run_epoch, period)

    # ------------------------------------------------------------------
    def attach_telemetry(self, hub) -> None:
        """Demand/background byte-split meters plus the latency gauge.

        All closures read counters ``_account`` already maintains; the
        service-time signal is the same data Fig. 8 aggregates, but
        windowed so phase changes are visible.
        """
        stats = self.stats  # warmup reset keeps the object identity
        hub.meter("ctrl.demand_nm_bytes", lambda: stats.demand_nm_bytes)
        hub.meter("ctrl.demand_fm_bytes", lambda: stats.demand_fm_bytes)
        hub.meter("ctrl.background_nm_bytes",
                  lambda: stats.background_nm_bytes)
        hub.meter("ctrl.background_fm_bytes",
                  lambda: stats.background_fm_bytes)
        hub.meter("ctrl.writebacks", lambda: stats.writebacks)
        hub.meter("ctrl.misses_completed", lambda: stats.misses_completed)
        hub.gauge("ctrl.inflight", lambda: float(self.inflight))
        hub.gauge("ctrl.nm_demand_fraction",
                  lambda: stats.nm_demand_fraction, trace=True)
        hub.gauge("ctrl.mean_miss_latency", lambda: stats.mean_miss_latency)

    # ------------------------------------------------------------------
    def handle_miss(self, paddr: int, is_write: bool, pc: int,
                    on_done: Callable[[float], None]) -> None:
        """Compatibility front door (``mshr_entries = 0`` and the
        test-suite): wrap one miss in a single-waiter transaction."""
        txn = MemoryRequest(paddr, is_write, pc, self._engine.now)
        txn.waiters.append(on_done)
        spans = self.spans
        if spans is not None and spans.arrival():
            txn.span = spans.start(paddr, is_write)
        self.handle_request(txn)

    def handle_request(self, txn: MemoryRequest) -> None:
        """Dispatch one transaction: consult the scheme, fire background
        traffic, and start walking the critical-path stages."""
        now = self._engine.now
        if now < self._stall_until:
            # OS epoch in progress: demand requests wait it out.
            self._engine.schedule_at(
                self._stall_until, self.handle_request, txn)
            return
        txn.state = DISPATCHED
        txn.dispatch_time = now
        txn.controller = self
        oracle = self.oracle
        if oracle is not None:
            oracle.before_access(txn.paddr, txn.is_write)
        plan = self.scheme.access(txn.paddr, txn.is_write, txn.pc)
        if oracle is not None:
            oracle.after_access(txn.paddr, txn.is_write, plan)
        span = txn.span
        if span is not None:
            span.dispatch(now)
            span.decide(self.scheme.span_row(plan),
                        plan.serviced_from.value, plan.bypassed, now)
        txn.plan = plan
        txn.stages = plan.stages
        self._account(plan)
        for op in plan.background:
            self._issue(op, Priority.BACKGROUND, None)
        self.inflight += 1
        txn.state = STAGING
        txn.stage_index = -1
        self._advance(txn, now)

    def handle_writeback(self, paddr: int) -> None:
        """LLC dirty eviction: background write to the data's location.

        Writebacks bypass the MSHR file entirely (nothing waits on
        them), so their ordering is independent of demand coalescing."""
        plan = self.scheme.writeback(paddr)
        if self.oracle is not None:
            self.oracle.after_writeback(paddr, plan)
        self.stats.writebacks += 1
        self._account(plan)
        for op in plan.background:
            self._issue(op, Priority.BACKGROUND, None)

    # ------------------------------------------------------------------
    def _advance(self, txn: MemoryRequest, when: float) -> None:
        """Issue the next non-empty stage, or complete the transaction.

        Called at dispatch (``stage_index == -1``) and from
        ``MemoryRequest.op_done`` when a stage's last op lands."""
        stages = txn.stages
        n = len(stages)
        i = txn.stage_index + 1
        nm = self._nm
        fm = self._fm
        span = txn.span
        if span is not None:
            span.end_stage(when)
        while i < n:
            ops = stages[i]
            if ops:
                txn.stage_index = i
                txn.remaining_ops = len(ops)
                op_done = txn.op_done
                if span is None:
                    for op in ops:
                        (nm if op.level is Level.NM else fm).access(
                            op.addr, op.size, op.is_write,
                            Priority.DEMAND, op_done)
                else:
                    span.begin_stage(stage_label(ops), when)
                    for op in ops:
                        (nm if op.level is Level.NM else fm).access(
                            op.addr, op.size, op.is_write,
                            Priority.DEMAND, op_done, span)
                return
            i += 1
        self._complete(txn, self._engine.now)

    def _complete(self, txn: MemoryRequest, when: float) -> None:
        self.inflight -= 1
        stats = self.stats
        stats.misses_completed += 1
        stats.total_miss_latency += when - txn.dispatch_time
        txn.state = COMPLETE
        txn.finish_time = when
        if txn.span is not None:
            self.spans.retire(txn, when)
        mshr = txn.mshr
        if mshr is not None:
            mshr.release(txn, when)
        else:
            for waiter in txn.waiters:
                waiter(when)

    def _issue(self, op, priority: Priority, on_complete) -> None:
        device = self._nm if op.level is Level.NM else self._fm
        device.access(op.addr, op.size, op.is_write, priority, on_complete)

    def _account(self, plan: AccessPlan) -> None:
        stats = self.stats
        for stage in plan.stages:
            for op in stage:
                if op.level is Level.NM:
                    stats.demand_nm_bytes += op.size
                else:
                    stats.demand_fm_bytes += op.size
        for op in plan.background:
            if op.level is Level.NM:
                stats.background_nm_bytes += op.size
            else:
                stats.background_fm_bytes += op.size

    # ------------------------------------------------------------------
    def _run_epoch(self, period: float) -> None:
        ops, stall = self.scheme.epoch()
        if self.oracle is not None:
            self.oracle.after_epoch(ops)
        for op in ops:
            self._issue(op, Priority.BACKGROUND, None)
            if op.level is Level.NM:
                self.stats.background_nm_bytes += op.size
            else:
                self.stats.background_fm_bytes += op.size
        self._stall_until = self._engine.now + stall
        self.stats.epoch_stall_cycles += stall
        self._engine.schedule(period, self._run_epoch, period)
