"""The flat-memory controller: executes a scheme's access plans on the
two memory devices.

Responsibilities:

* run each plan's critical-path stages in order (stage *i+1* issues when
  stage *i*'s last operation completes) at demand priority, then signal
  the waiting core;
* fire background traffic (swaps, migrations, prefetches, writebacks)
  without blocking anyone — it still competes for channel bandwidth;
* drive epoch-based schemes (HMA): run the scheme's epoch at its period,
  issue the bulk-migration traffic and stall *all* demand requests for
  the OS-overhead window (context switch + PTE/TLB work);
* account demand bytes per level for the Fig. 8 bandwidth-split result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional

from repro.dram.device import MemoryDevice
from repro.dram.request import Priority
from repro.schemes.base import AccessPlan, Level, MemoryScheme, Op
from repro.sim.engine import Engine

if TYPE_CHECKING:
    from repro.validate.oracle import ValidationOracle


@dataclass
class ControllerStats:
    """Demand/background accounting.  ``reset()`` supports warmup
    discarding (the paper measures steady-state Simpoint regions)."""

    demand_nm_bytes: int = 0
    demand_fm_bytes: int = 0
    background_nm_bytes: int = 0
    background_fm_bytes: int = 0
    writebacks: int = 0
    epoch_stall_cycles: float = 0.0
    total_miss_latency: float = 0.0
    misses_completed: int = 0

    @property
    def nm_demand_fraction(self) -> float:
        """Fraction of demand bandwidth served by NM (Fig. 8's metric)."""
        total = self.demand_nm_bytes + self.demand_fm_bytes
        return self.demand_nm_bytes / total if total else 0.0

    @property
    def mean_miss_latency(self) -> float:
        if not self.misses_completed:
            return 0.0
        return self.total_miss_latency / self.misses_completed

    def reset(self) -> None:
        """Zero every counter (keeps the object identity stable)."""
        self.demand_nm_bytes = 0
        self.demand_fm_bytes = 0
        self.background_nm_bytes = 0
        self.background_fm_bytes = 0
        self.writebacks = 0
        self.epoch_stall_cycles = 0.0
        self.total_miss_latency = 0.0
        self.misses_completed = 0


class FlatMemoryController:
    """Glue between the LLC miss stream, a scheme, and the devices."""

    def __init__(self, engine: Engine, scheme: MemoryScheme,
                 nm_device: MemoryDevice, fm_device: MemoryDevice,
                 oracle: Optional["ValidationOracle"] = None) -> None:
        self._engine = engine
        self.scheme = scheme
        self._nm = nm_device
        self._fm = fm_device
        #: differential oracle (repro.validate); None in normal runs.
        #: Hooked around every scheme call so it sees the same metadata
        #: snapshots the scheme does, stall-rescheduling included.
        self.oracle = oracle
        self.stats = ControllerStats()
        self._stall_until = 0.0
        period = scheme.epoch_period_cycles()
        if period is not None:
            engine.schedule(period, self._run_epoch, period)

    # ------------------------------------------------------------------
    def attach_telemetry(self, hub) -> None:
        """Demand/background byte-split meters plus the latency gauge.

        All closures read counters ``_account`` already maintains; the
        service-time signal is the same data Fig. 8 aggregates, but
        windowed so phase changes are visible.
        """
        stats = self.stats  # warmup reset keeps the object identity
        hub.meter("ctrl.demand_nm_bytes", lambda: stats.demand_nm_bytes)
        hub.meter("ctrl.demand_fm_bytes", lambda: stats.demand_fm_bytes)
        hub.meter("ctrl.background_nm_bytes",
                  lambda: stats.background_nm_bytes)
        hub.meter("ctrl.background_fm_bytes",
                  lambda: stats.background_fm_bytes)
        hub.meter("ctrl.writebacks", lambda: stats.writebacks)
        hub.meter("ctrl.misses_completed", lambda: stats.misses_completed)
        hub.gauge("ctrl.nm_demand_fraction",
                  lambda: stats.nm_demand_fraction, trace=True)
        hub.gauge("ctrl.mean_miss_latency", lambda: stats.mean_miss_latency)

    # ------------------------------------------------------------------
    def handle_miss(self, paddr: int, is_write: bool, pc: int,
                    on_done: Callable[[float], None]) -> None:
        """Service one LLC miss; ``on_done(time)`` fires at completion."""
        now = self._engine.now
        if now < self._stall_until:
            # OS epoch in progress: demand requests wait it out.
            self._engine.schedule_at(
                self._stall_until, self.handle_miss, paddr, is_write, pc, on_done
            )
            return
        if self.oracle is not None:
            self.oracle.before_access(paddr, is_write)
        plan = self.scheme.access(paddr, is_write, pc)
        if self.oracle is not None:
            self.oracle.after_access(paddr, is_write, plan)
        self._account(plan)
        for op in plan.background:
            self._issue(op, Priority.BACKGROUND, None)
        start = now

        def finished(when: float) -> None:
            self.stats.misses_completed += 1
            self.stats.total_miss_latency += when - start
            on_done(when)

        self._run_stage(plan.stages, 0, finished)

    def handle_writeback(self, paddr: int) -> None:
        """LLC dirty eviction: background write to the data's location."""
        plan = self.scheme.writeback(paddr)
        if self.oracle is not None:
            self.oracle.after_writeback(paddr, plan)
        self.stats.writebacks += 1
        self._account(plan)
        for op in plan.background:
            self._issue(op, Priority.BACKGROUND, None)

    # ------------------------------------------------------------------
    def _run_stage(self, stages: List[List[Op]], index: int,
                   on_done: Callable[[float], None]) -> None:
        if index >= len(stages):
            on_done(self._engine.now)
            return
        ops = stages[index]
        if not ops:
            self._run_stage(stages, index + 1, on_done)
            return
        remaining = len(ops)

        def op_done(when: float) -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0:
                self._run_stage(stages, index + 1, on_done)

        for op in ops:
            self._issue(op, Priority.DEMAND, op_done)

    def _issue(self, op: Op, priority: Priority,
               on_complete) -> None:
        device = self._nm if op.level is Level.NM else self._fm
        device.access(op.addr, op.size, op.is_write, priority, on_complete)

    def _account(self, plan: AccessPlan) -> None:
        for op in plan.critical_ops():
            if op.level is Level.NM:
                self.stats.demand_nm_bytes += op.size
            else:
                self.stats.demand_fm_bytes += op.size
        for op in plan.background:
            if op.level is Level.NM:
                self.stats.background_nm_bytes += op.size
            else:
                self.stats.background_fm_bytes += op.size

    # ------------------------------------------------------------------
    def _run_epoch(self, period: float) -> None:
        ops, stall = self.scheme.epoch()
        if self.oracle is not None:
            self.oracle.after_epoch(ops)
        for op in ops:
            self._issue(op, Priority.BACKGROUND, None)
            if op.level is Level.NM:
                self.stats.background_nm_bytes += op.size
            else:
                self.stats.background_fm_bytes += op.size
        self._stall_until = self._engine.now + stall
        self.stats.epoch_stall_cycles += stall
        self._engine.schedule(period, self._run_epoch, period)
