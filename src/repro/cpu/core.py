"""Trace-driven core model.

Each core replays one benchmark instance: it executes ``gap_instr``
instructions of compute (at its issue width) between memory accesses and
keeps up to ``max_outstanding_misses`` LLC misses in flight — the
memory-level parallelism a 128-entry ROB sustains.  When the window is
full the core stalls until a miss returns; execution time therefore
responds to memory latency *and* to bandwidth saturation, which is what
the paper's bandwidth-bound evaluation needs.

The core is mode-agnostic: a ``MissPath`` object decides whether a trace
record goes through a modelled cache hierarchy (reference mode) or is
already an LLC miss (miss-stream mode, the fast default).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.sim.engine import Engine
from repro.workloads.trace import MemoryAccess

#: dirty lines a core keeps before the oldest is written back; models the
#: residence time of dirty data in its LLC share.
DIRTY_FIFO_DEPTH = 64


@dataclass
class CoreStats:
    instructions: int = 0
    accesses: int = 0
    misses_issued: int = 0
    misses_retired: int = 0
    stall_events: int = 0
    finish_time: float = 0.0

    def ipc(self) -> float:
        if self.finish_time <= 0:
            return 0.0
        return self.instructions / self.finish_time


class Core:
    """One out-of-order core replaying a trace."""

    def __init__(self, engine: Engine, core_id: int, trace: Iterator[MemoryAccess],
                 issue_width: int, max_outstanding: int,
                 translate: Callable[[int], int],
                 send_miss: Callable[[int, bool, int, Callable[[float], None]], None],
                 send_writeback: Callable[[int], None],
                 classify: Optional[Callable[[int, bool, int], "ClassifyResult"]] = None,
                 on_finished: Optional[Callable[["Core"], None]] = None) -> None:
        if issue_width < 1 or max_outstanding < 1:
            raise ValueError("issue width and outstanding window must be >= 1")
        self._engine = engine
        self.core_id = core_id
        self._trace = trace
        self._issue_width = issue_width
        self._max_outstanding = max_outstanding
        self._translate = translate
        self._send_miss = send_miss
        self._send_writeback = send_writeback
        self._classify = classify
        self._on_finished = on_finished
        self._outstanding = 0
        self._blocked = False
        self._draining = False
        self.finished = False
        #: bounded FIFO; overflow evicts the oldest entry as a writeback
        #: (an explicit popleft rather than ``maxlen`` because a silent
        #: drop would lose the eviction).  deque makes that O(1) where a
        #: list's ``pop(0)`` was O(depth) per dirty miss.
        self._dirty_fifo: deque = deque()
        self.stats = CoreStats()

    # ------------------------------------------------------------------
    def start(self) -> None:
        self._engine.schedule(0, self._advance)

    def _advance(self) -> None:
        """Fetch the next trace record and schedule its issue after the
        compute gap."""
        record = next(self._trace, None)
        if record is None:
            self._draining = True
            self._maybe_finish()
            return
        self.stats.instructions += record.gap_instr
        delay = record.gap_instr / self._issue_width
        self._engine.schedule(delay, self._issue, record)

    def _issue(self, record: MemoryAccess) -> None:
        self.stats.accesses += 1
        paddr = self._translate(record.vaddr)
        if self._classify is not None:
            outcome = self._classify(paddr, record.is_write, self.core_id)
            if outcome.writeback_addr is not None:
                self._send_writeback(outcome.writeback_addr)
            if not outcome.llc_miss:
                # cache hit: its latency folds into compute time
                self._engine.schedule(outcome.latency_cycles, self._advance)
                return
        self._issue_miss(paddr, record)

    def _issue_miss(self, paddr: int, record: MemoryAccess) -> None:
        self._outstanding += 1
        self.stats.misses_issued += 1
        if record.is_write:
            self._track_dirty(paddr)
        self._send_miss(paddr, record.is_write, record.pc, self._miss_done)
        if self._outstanding < self._max_outstanding:
            self._advance()
        else:
            self._blocked = True
            self.stats.stall_events += 1

    def _miss_done(self, when: float) -> None:
        self._outstanding -= 1
        self.stats.misses_retired += 1
        if self._blocked:
            self._blocked = False
            self._advance()
        self._maybe_finish()

    def _track_dirty(self, paddr: int) -> None:
        """Queue a future writeback for a dirtied line (miss-stream mode;
        reference mode gets real LLC evictions instead)."""
        if self._classify is not None:
            return
        self._dirty_fifo.append(paddr)
        if len(self._dirty_fifo) > DIRTY_FIFO_DEPTH:
            self._send_writeback(self._dirty_fifo.popleft())

    def _maybe_finish(self) -> None:
        if self._draining and self._outstanding == 0 and not self.finished:
            self.finished = True
            self.stats.finish_time = self._engine.now
            for paddr in self._dirty_fifo:
                self._send_writeback(paddr)
            self._dirty_fifo.clear()
            if self._on_finished is not None:
                self._on_finished(self)
