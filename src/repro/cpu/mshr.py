"""Miss-status holding registers: the transaction front door to the
flat-memory controller.

Every LLC miss is a first-class :class:`MemoryRequest` transaction that
flows core -> MSHR file -> controller -> scheme -> devices as an explicit
state machine::

    QUEUED ----------> DISPATCHED ----------> STAGING ----------> COMPLETE
    (waiting for an    (scheme consulted,     (critical-path      (waiters
     MSHR entry; only   plan attached; may     stages in flight    woken,
     when the file is   be held here by an     on the devices)     entry
     full)              OS epoch stall)                            freed)

The MSHR file itself (:class:`MSHRFile`) models the two behaviours real
hybrid-memory controllers get from their request queues:

* **coalescing** — a second miss to a 64 B subblock that already has a
  transaction in flight does *not* consult the scheme or touch the
  devices again; it simply joins the transaction's waiter list and wakes
  when the one transaction completes.
* **structural stalls** — the file has a configurable number of entries
  (``SystemConfig.mshr_entries``); when all are occupied, new misses
  queue FIFO until an entry frees.  These stalls are counted separately
  (:class:`MSHRStats`) from the cores' full-ROB stalls
  (``CoreStats.stall_events``) so the two bottlenecks are
  distinguishable in the results.

``mshr_entries = 0`` is the *compatibility* value: no MSHR file is built
at all and cores talk to the controller directly (via
``FlatMemoryController.handle_miss``, which wraps each miss in a
transaction with a single waiter) — simulated results are bit-identical
to the pre-MSHR design.

Dirty-eviction writebacks never enter the MSHR: they are fire-and-forget
background traffic with no completion to coalesce onto, and routing them
around the file preserves their issue order even when the demand stream
stalls structurally.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.sim.config import SUBBLOCK_BYTES
from repro.sim.engine import Engine

# ---------------------------------------------------------------------------
# transaction states (plain ints: state checks sit on the hot path)
# ---------------------------------------------------------------------------
QUEUED = 0      #: allocated, waiting for a free MSHR entry
DISPATCHED = 1  #: entered the controller; scheme consulted, plan attached
STAGING = 2     #: critical-path stages in flight on the devices
COMPLETE = 3    #: finished; waiters woken, entry freed

STATE_NAMES = {QUEUED: "QUEUED", DISPATCHED: "DISPATCHED",
               STAGING: "STAGING", COMPLETE: "COMPLETE"}


class MemoryRequest:
    """One LLC miss as an explicit transaction.

    Carries everything the old closure chain captured implicitly — the
    current stage index, the count of outstanding ops in that stage, and
    the issue/dispatch/finish timestamps — as plain fields, so the
    controller's stage walk allocates nothing per stage and the state of
    every in-flight miss is inspectable.
    """

    __slots__ = ("paddr", "is_write", "pc", "state",
                 "issue_time", "dispatch_time", "finish_time",
                 "plan", "stages", "stage_index", "remaining_ops",
                 "waiters", "coalesced", "line", "mshr", "controller",
                 "span")

    def __init__(self, paddr: int, is_write: bool, pc: int,
                 issue_time: float) -> None:
        self.paddr = paddr
        self.is_write = is_write
        self.pc = pc
        self.state = QUEUED
        self.issue_time = issue_time
        self.dispatch_time = 0.0
        self.finish_time = 0.0
        self.plan = None
        self.stages = None
        self.stage_index = -1
        self.remaining_ops = 0
        #: per-request trace span (:mod:`repro.telemetry.spans`) when
        #: this transaction was sampled; None otherwise.
        self.span = None
        #: ``on_done(when)`` callbacks woken at completion; the first is
        #: the issuing core's, the rest are coalesced same-subblock
        #: misses.
        self.waiters: List[Callable[[float], None]] = []
        self.coalesced = 0
        self.line = -1
        self.mshr: Optional["MSHRFile"] = None
        self.controller = None

    # ------------------------------------------------------------------
    def op_done(self, when: float) -> None:
        """Device completion callback for every op of the current stage;
        the stage is done when the last op reports in."""
        self.remaining_ops -= 1
        if self.remaining_ops == 0:
            self.controller._advance(self, when)

    def fast_done(self, when: float) -> None:
        """Device completion callback for the batch engine's single-op
        fast path: the whole critical path was one device access, so
        this is ``op_done`` + ``_advance`` + ``_complete`` fused (spans
        and the oracle are never active on the fast path)."""
        controller = self.controller
        controller.inflight -= 1
        stats = controller.stats
        stats.misses_completed += 1
        stats.total_miss_latency += when - self.dispatch_time
        self.state = COMPLETE
        self.finish_time = when
        mshr = self.mshr
        if mshr is not None:
            mshr.release(self, when)
        else:
            for waiter in self.waiters:
                waiter(when)
            controller._recycle(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MemoryRequest(paddr={self.paddr:#x}, "
                f"state={STATE_NAMES[self.state]}, "
                f"stage={self.stage_index}, waiters={len(self.waiters)})")


@dataclass
class MSHRStats:
    """MSHR-file accounting.  ``reset()`` supports warmup discarding."""

    allocations: int = 0
    #: misses absorbed by an in-flight same-subblock transaction.
    coalesced: int = 0
    #: arrivals that found the file full and had to queue (the MSHR's
    #: structural stall — distinct from the cores' full-ROB
    #: ``CoreStats.stall_events``).
    structural_stalls: int = 0
    peak_occupancy: int = 0
    peak_pending: int = 0

    def reset(self) -> None:
        self.allocations = 0
        self.coalesced = 0
        self.structural_stalls = 0
        self.peak_occupancy = 0
        self.peak_pending = 0


class MSHRFile:
    """A shared LLC-level MSHR file in front of the controller."""

    def __init__(self, engine: Engine, entries: int, controller,
                 subblock_bytes: int = SUBBLOCK_BYTES) -> None:
        if entries < 1:
            raise ValueError("an MSHR file needs at least one entry")
        self._engine = engine
        self.entries = entries
        self._controller = controller
        self._shift = subblock_bytes.bit_length() - 1
        #: in-flight transactions keyed by subblock line number.
        self._table: Dict[int, MemoryRequest] = {}
        #: FIFO of misses that arrived while the file was full; the last
        #: element is the arrival time when the miss was span-sampled,
        #: None otherwise (the sampling decision happens at arrival so
        #: the modulo sequence is queue-independent).
        self._pending: Deque[Tuple[int, bool, int, Callable,
                                   Optional[float]]] = deque()
        self._draining = False
        self.stats = MSHRStats()
        #: span recorder (:class:`repro.telemetry.spans.SpanRecorder`)
        #: when span tracing is enabled; None keeps the hot path to one
        #: ``is None`` check.
        self.spans = None

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return len(self._table)

    @property
    def pending(self) -> int:
        return len(self._pending)

    def attach_telemetry(self, hub) -> None:
        """Coalescing/stall meters plus occupancy gauges."""
        stats = self.stats  # warmup reset keeps the object identity
        hub.meter("mshr.allocations", lambda: stats.allocations)
        hub.meter("mshr.coalesced", lambda: stats.coalesced)
        hub.meter("mshr.structural_stalls",
                  lambda: stats.structural_stalls)
        hub.gauge("mshr.occupancy", lambda: float(len(self._table)))
        hub.gauge("mshr.pending", lambda: float(len(self._pending)))

    # ------------------------------------------------------------------
    def issue(self, paddr: int, is_write: bool, pc: int,
              on_done: Callable[[float], None]) -> None:
        """Core-facing entry point (same signature as
        ``FlatMemoryController.handle_miss``)."""
        line = paddr >> self._shift
        txn = self._table.get(line)
        spans = self.spans
        if txn is not None:
            # coalesce: join the in-flight transaction's waiter list.
            txn.waiters.append(on_done)
            txn.coalesced += 1
            self.stats.coalesced += 1
            if spans is not None:
                spans.coalesce(txn)
            return
        span_issue = None
        if spans is not None and spans.arrival():
            span_issue = self._engine.now
        if len(self._table) >= self.entries:
            self.stats.structural_stalls += 1
            self._pending.append((paddr, is_write, pc, on_done, span_issue))
            if len(self._pending) > self.stats.peak_pending:
                self.stats.peak_pending = len(self._pending)
            return
        self._allocate(line, paddr, is_write, pc, on_done, span_issue)

    def _allocate(self, line: int, paddr: int, is_write: bool, pc: int,
                  on_done: Callable[[float], None],
                  span_issue: Optional[float] = None) -> None:
        txn = MemoryRequest(paddr, is_write, pc, self._engine.now)
        txn.line = line
        txn.mshr = self
        txn.waiters.append(on_done)
        if span_issue is not None:
            span = self.spans.start(paddr, is_write, span_issue)
            span.admit(self._engine.now)
            txn.span = span
        self._table[line] = txn
        self.stats.allocations += 1
        if len(self._table) > self.stats.peak_occupancy:
            self.stats.peak_occupancy = len(self._table)
        self._controller.handle_request(txn)

    # ------------------------------------------------------------------
    def release(self, txn: MemoryRequest, when: float) -> None:
        """Called by the controller when ``txn`` completes: free the
        entry, wake every waiter (issue order), then admit queued
        misses into the freed capacity."""
        del self._table[txn.line]
        for waiter in txn.waiters:
            waiter(when)
        if self._draining:
            # nested completion during admission below: the outer drain
            # loop re-checks capacity, nothing more to do here.
            return
        self._draining = True
        try:
            while self._pending and len(self._table) < self.entries:
                paddr, is_write, pc, on_done, span_issue = \
                    self._pending.popleft()
                line = paddr >> self._shift
                cur = self._table.get(line)
                if cur is not None:
                    cur.waiters.append(on_done)
                    cur.coalesced += 1
                    self.stats.coalesced += 1
                    if self.spans is not None:
                        # the queued miss coalesced away; its sampled
                        # arrival becomes a sibling join on the survivor
                        self.spans.coalesce(cur)
                else:
                    self._allocate(line, paddr, is_write, pc, on_done,
                                   span_issue)
        finally:
            self._draining = False
