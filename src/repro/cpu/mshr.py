"""Miss-status holding registers: the transaction front door to the
flat-memory controller.

Every LLC miss is a first-class :class:`MemoryRequest` transaction that
flows core -> MSHR file -> controller -> scheme -> devices as an explicit
state machine::

    QUEUED ----------> DISPATCHED ----------> STAGING ----------> COMPLETE
    (waiting for an    (scheme consulted,     (critical-path      (waiters
     MSHR entry; only   plan attached; may     stages in flight    woken,
     when the file is   be held here by an     on the devices)     entry
     full)              OS epoch stall)                            freed)

The MSHR file itself (:class:`MSHRFile`) models the two behaviours real
hybrid-memory controllers get from their request queues:

* **read coalescing** — a second *read* miss to a 64 B subblock whose
  fill is already in flight for a *read* does not consult the scheme or
  touch the devices again; it joins that transaction's waiter list and
  wakes when the one fill completes.  Coalescing is read-only by
  design: a store carries a state change the scheme must observe (dirty
  bits, migration triggers), and chaining an independent miss onto an
  in-flight *write* serializes it behind traffic the scheme might have
  served faster had it been consulted — the silc-mshr32 postmortem
  (docs/architecture.md) measured write coalescing costing SILC-FM its
  entire speedup, because waiters were welded to slow far-memory fetches
  that a fresh consult would have resolved as near-memory hits after
  the first miss's swap-in.
* **structural stalls** — the file has a configurable number of entries
  (``SystemConfig.mshr_entries``); when all are occupied, new misses
  queue FIFO until an entry frees.  These stalls are counted separately
  (:class:`MSHRStats`) from the cores' full-ROB stalls
  (``CoreStats.stall_events``) so the two bottlenecks are
  distinguishable in the results.  A read that arrives while a read to
  the same subblock is *queued* joins the queued miss directly — it
  burns neither a structural stall nor a fresh entry when the queue
  drains — and a drained miss keeps its original arrival time as its
  ``issue_time`` so latency attribution sees the queue wait.

The default ``SystemConfig.mshr_entries`` is sized to the machine's
aggregate memory-level parallelism (cores × per-core outstanding
misses): any smaller file is a structural concurrency cap that no
dispatch policy can tune away, which is exactly what the silc-mshr32
bench anomaly turned out to be.

``mshr_entries = 0`` is the *compatibility* value: no MSHR file is built
at all and cores talk to the controller directly (via
``FlatMemoryController.handle_miss``, which wraps each miss in a
transaction with a single waiter) — simulated results are bit-identical
to the pre-MSHR design.

Dirty-eviction writebacks never enter the MSHR: they are fire-and-forget
background traffic with no completion to coalesce onto, and routing them
around the file preserves their issue order even when the demand stream
stalls structurally.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional

from repro.sim.config import SUBBLOCK_BYTES
from repro.sim.engine import Engine

# ---------------------------------------------------------------------------
# transaction states (plain ints: state checks sit on the hot path)
# ---------------------------------------------------------------------------
QUEUED = 0      #: allocated, waiting for a free MSHR entry
DISPATCHED = 1  #: entered the controller; scheme consulted, plan attached
STAGING = 2     #: critical-path stages in flight on the devices
COMPLETE = 3    #: finished; waiters woken, entry freed

STATE_NAMES = {QUEUED: "QUEUED", DISPATCHED: "DISPATCHED",
               STAGING: "STAGING", COMPLETE: "COMPLETE"}


class MemoryRequest:
    """One LLC miss as an explicit transaction.

    Carries everything the old closure chain captured implicitly — the
    current stage index, the count of outstanding ops in that stage, and
    the issue/dispatch/finish timestamps — as plain fields, so the
    controller's stage walk allocates nothing per stage and the state of
    every in-flight miss is inspectable.
    """

    __slots__ = ("paddr", "is_write", "pc", "state",
                 "issue_time", "dispatch_time", "finish_time",
                 "plan", "stages", "stage_index", "remaining_ops",
                 "waiters", "coalesced", "line", "mshr", "controller",
                 "span")

    def __init__(self, paddr: int, is_write: bool, pc: int,
                 issue_time: float) -> None:
        self.paddr = paddr
        self.is_write = is_write
        self.pc = pc
        self.state = QUEUED
        self.issue_time = issue_time
        self.dispatch_time = 0.0
        self.finish_time = 0.0
        self.plan = None
        self.stages = None
        self.stage_index = -1
        self.remaining_ops = 0
        #: per-request trace span (:mod:`repro.telemetry.spans`) when
        #: this transaction was sampled; None otherwise.
        self.span = None
        #: ``on_done(when)`` callbacks woken at completion; the first is
        #: the issuing core's, the rest are coalesced same-subblock
        #: misses.
        self.waiters: List[Callable[[float], None]] = []
        self.coalesced = 0
        self.line = -1
        self.mshr: Optional["MSHRFile"] = None
        self.controller = None

    # ------------------------------------------------------------------
    def op_done(self, when: float) -> None:
        """Device completion callback for every op of the current stage;
        the stage is done when the last op reports in."""
        self.remaining_ops -= 1
        if self.remaining_ops == 0:
            self.controller._advance(self, when)

    def fast_done(self, when: float) -> None:
        """Device completion callback for the batch engine's single-op
        fast path: the whole critical path was one device access, so
        this is ``op_done`` + ``_advance`` + ``_complete`` fused (spans
        and the oracle are never active on the fast path)."""
        controller = self.controller
        controller.inflight -= 1
        stats = controller.stats
        stats.misses_completed += 1
        stats.total_miss_latency += when - self.dispatch_time
        self.state = COMPLETE
        self.finish_time = when
        mshr = self.mshr
        if mshr is not None:
            mshr.release(self, when)
        else:
            for waiter in self.waiters:
                waiter(when)
            controller._recycle(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"MemoryRequest(paddr={self.paddr:#x}, "
                f"state={STATE_NAMES[self.state]}, "
                f"stage={self.stage_index}, waiters={len(self.waiters)})")


@dataclass
class MSHRStats:
    """MSHR-file accounting.  ``reset()`` supports warmup discarding."""

    allocations: int = 0
    #: misses absorbed by an in-flight same-subblock transaction.
    coalesced: int = 0
    #: arrivals that found the file full and had to queue (the MSHR's
    #: structural stall — distinct from the cores' full-ROB
    #: ``CoreStats.stall_events``).
    structural_stalls: int = 0
    peak_occupancy: int = 0
    peak_pending: int = 0

    def reset(self) -> None:
        self.allocations = 0
        self.coalesced = 0
        self.structural_stalls = 0
        self.peak_occupancy = 0
        self.peak_pending = 0


class PendingMiss:
    """A miss waiting in the FIFO for a free MSHR entry.

    Carries its own waiter list so later same-subblock *reads* can join
    it while it queues (no structural stall, no extra queue slot, no
    second entry at drain time) and remembers the original arrival time
    so the admitted transaction's ``issue_time`` — and therefore span
    latency attribution — includes the queue wait.
    """

    __slots__ = ("paddr", "is_write", "pc", "waiters", "issue_time",
                 "span_issue", "joins")

    def __init__(self, paddr: int, is_write: bool, pc: int,
                 on_done: Callable[[float], None], issue_time: float,
                 span_issue: Optional[float]) -> None:
        self.paddr = paddr
        self.is_write = is_write
        self.pc = pc
        self.waiters: List[Callable[[float], None]] = [on_done]
        self.issue_time = issue_time
        #: arrival time when the miss was span-sampled, None otherwise
        #: (the sampling decision happens at arrival so the modulo
        #: sequence is queue-independent).
        self.span_issue = span_issue
        #: join timestamps of reads that coalesced onto this queued
        #: miss, replayed as span siblings if it was sampled.
        self.joins: List[float] = []


class MSHRFile:
    """A shared LLC-level MSHR file in front of the controller."""

    def __init__(self, engine: Engine, entries: int, controller,
                 subblock_bytes: int = SUBBLOCK_BYTES) -> None:
        if entries < 1:
            raise ValueError("an MSHR file needs at least one entry")
        self._engine = engine
        self.entries = entries
        self._controller = controller
        self._shift = subblock_bytes.bit_length() - 1
        #: occupied entries.  A plain counter: reads register in
        #: ``_reads`` for coalescing, writes hold an entry anonymously
        #: (nothing may coalesce onto them), so a dict of all in-flight
        #: transactions would be dead weight.
        self._occupied = 0
        #: coalescable in-flight *read* transaction per subblock line.
        self._reads: Dict[int, MemoryRequest] = {}
        #: FIFO of misses that arrived while the file was full.
        self._pending: Deque[PendingMiss] = deque()
        #: queued *read* per subblock line, for arrival coalescing onto
        #: pending misses.  Invariant: at most one queued read per line
        #: (a second read joins the first instead of queueing).
        self._pending_reads: Dict[int, PendingMiss] = {}
        self._draining = False
        #: recycled MemoryRequest transactions (batch engine only; None
        #: keeps the scalar reference path's object lifecycle
        #: untouched).  Enabled via :meth:`enable_pooling`.
        self._pool: Optional[List[MemoryRequest]] = None
        self._pool_cap = 0
        self.stats = MSHRStats()
        #: span recorder (:class:`repro.telemetry.spans.SpanRecorder`)
        #: when span tracing is enabled; None keeps the hot path to one
        #: ``is None`` check.
        self.spans = None

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return self._occupied

    @property
    def pending(self) -> int:
        return len(self._pending)

    def enable_pooling(self, cap: Optional[int] = None) -> None:
        """Recycle completed transactions through a free pool (batch
        engine only).

        A transaction is returned to the pool at :meth:`release`, after
        its waiters have been woken and the pending queue drained —
        nothing holds a completed transaction past that point (device
        completions are scheduled, never synchronous, so no event can
        still carry a stale reference).  Scalar runs never call this,
        keeping the reference path's allocation behaviour — and thus the
        honesty of the bench's scalar/batched ratio — unchanged.
        """
        self._pool = []
        # sized to the file plus drain headroom: more than `entries`
        # transactions can never be live, so the pool never thrashes.
        self._pool_cap = cap if cap is not None else self.entries + 32

    def attach_telemetry(self, hub) -> None:
        """Coalescing/stall meters plus occupancy gauges."""
        stats = self.stats  # warmup reset keeps the object identity
        hub.meter("mshr.allocations", lambda: stats.allocations)
        hub.meter("mshr.coalesced", lambda: stats.coalesced)
        hub.meter("mshr.structural_stalls",
                  lambda: stats.structural_stalls)
        hub.gauge("mshr.occupancy", lambda: float(self._occupied))
        hub.gauge("mshr.pending", lambda: float(len(self._pending)))

    # ------------------------------------------------------------------
    def issue(self, paddr: int, is_write: bool, pc: int,
              on_done: Callable[[float], None]) -> None:
        """Core-facing entry point (same signature as
        ``FlatMemoryController.handle_miss``)."""
        line = paddr >> self._shift
        spans = self.spans
        if not is_write:
            txn = self._reads.get(line)
            if txn is not None:
                # read-onto-read coalesce: join the in-flight fill.
                txn.waiters.append(on_done)
                txn.coalesced += 1
                self.stats.coalesced += 1
                if spans is not None:
                    spans.coalesce(txn)
                return
            pend = self._pending_reads.get(line)
            if pend is not None:
                # the line's fill is queued, not yet in flight: join it
                # there — no structural stall, no second queue slot, no
                # fresh entry at drain time.
                pend.waiters.append(on_done)
                self.stats.coalesced += 1
                if spans is not None:
                    pend.joins.append(self._engine.now)
                return
        now = self._engine.now
        span_issue = None
        if spans is not None and spans.arrival():
            span_issue = now
        if self._occupied >= self.entries:
            self.stats.structural_stalls += 1
            pend = PendingMiss(paddr, is_write, pc, on_done, now,
                               span_issue)
            self._pending.append(pend)
            if not is_write:
                self._pending_reads[line] = pend
            if len(self._pending) > self.stats.peak_pending:
                self.stats.peak_pending = len(self._pending)
            return
        self._allocate(line, paddr, is_write, pc, [on_done], now,
                       span_issue, None)

    def _allocate(self, line: int, paddr: int, is_write: bool, pc: int,
                  waiters: List[Callable[[float], None]],
                  issue_time: float, span_issue: Optional[float],
                  joins: Optional[List[float]]) -> None:
        """Take an entry and dispatch.  ``issue_time`` is the miss's
        original arrival time — for drained pending misses that predates
        ``engine.now`` by the queue wait.  ``waiters`` is adopted, not
        copied."""
        pool = self._pool
        if pool:
            txn = pool.pop()
            txn.paddr = paddr
            txn.is_write = is_write
            txn.pc = pc
            txn.state = QUEUED
            txn.issue_time = issue_time
        else:
            txn = MemoryRequest(paddr, is_write, pc, issue_time)
        txn.line = line
        txn.mshr = self
        txn.waiters = waiters
        txn.coalesced = len(waiters) - 1
        if span_issue is not None:
            span = self.spans.start(paddr, is_write, span_issue)
            span.admit(self._engine.now)
            if joins:
                for join_t in joins:
                    span.join(join_t)
            txn.span = span
        self._occupied += 1
        if not is_write:
            self._reads[line] = txn
        self.stats.allocations += 1
        if self._occupied > self.stats.peak_occupancy:
            self.stats.peak_occupancy = self._occupied
        self._controller.handle_request(txn)

    # ------------------------------------------------------------------
    def release(self, txn: MemoryRequest, when: float) -> None:
        """Called by the controller when ``txn`` completes: free the
        entry, wake every waiter (issue order), then admit queued
        misses into the freed capacity."""
        self._occupied -= 1
        if not txn.is_write and self._reads.get(txn.line) is txn:
            del self._reads[txn.line]
        for waiter in txn.waiters:
            waiter(when)
        if self._pending and not self._draining:
            # a nested completion during admission skips this: the outer
            # drain loop re-checks capacity itself.
            self._drain_pending()
        pool = self._pool
        if pool is not None and len(pool) < self._pool_cap:
            txn.waiters.clear()
            txn.span = None
            pool.append(txn)

    def _drain_pending(self) -> None:
        """Admit queued misses (FIFO) into freed entries.  Split out of
        :meth:`release` so the closed-form evaluator — which inlines the
        wake loop above — re-enters here only when the queue is actually
        non-empty (it never is at the MLP-sized default file)."""
        self._draining = True
        try:
            while self._pending and self._occupied < self.entries:
                pend = self._pending.popleft()
                line = pend.paddr >> self._shift
                if not pend.is_write:
                    # a queued read cannot find an in-flight read to its
                    # line here: any read that could have become one
                    # joined this queued miss at arrival instead.
                    self._pending_reads.pop(line, None)
                self._allocate(line, pend.paddr, pend.is_write, pend.pc,
                               pend.waiters, pend.issue_time,
                               pend.span_issue, pend.joins)
        finally:
            self._draining = False
