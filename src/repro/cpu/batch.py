"""The batch engine: vectorized trace replay + an allocation-lean
controller data plane for the post-LLC miss stream.

Selected by ``SystemConfig.batch_window > 0`` (miss mode only; the
scalar engine remains the default and the reference).  The event engine
stays the global sequencer — every miss still issues and completes at
exactly the scalar path's event times — but the *work per event* drops:

* :class:`BatchCore` replays pregenerated column windows
  (:meth:`repro.workloads.model.WorkloadModel.miss_batches`) instead of
  pulling ``MemoryAccess`` objects from a generator;
* :class:`BatchFlatMemoryController` asks the scheme for its
  single-op fast shape (:meth:`repro.schemes.base.MemoryScheme
  .access_fast`), pools transaction objects, and issues device accesses
  through the channels' fast paths — no ``AccessPlan``/``Op``/
  ``DRAMRequest`` allocation and no scheduler pick on the hot path.

Bit-identical equivalence with the scalar engine is the contract, gated
by ``tests/integration/test_batch_equivalence.py``.  The oracle and span
tracing force per-request fallback to the scalar controller logic (their
hooks observe plan objects), so ``--check`` runs validate batched trace
generation with unchanged oracle coverage.
"""

from __future__ import annotations

from typing import Callable, Iterator, List

from repro.cpu.controller import FlatMemoryController
from repro.cpu.core import DIRTY_FIFO_DEPTH, Core
from repro.cpu.mshr import DISPATCHED, QUEUED, STAGING, MemoryRequest
from repro.schemes.base import Level
from repro.sim.engine import Engine

#: recycled MemoryRequest transactions kept by the controller pool.
_TXN_POOL_CAP = 64


class BatchCore(Core):
    """A core replaying pregenerated miss-batch columns.

    Event-for-event identical to :class:`Core` on a miss stream: the
    same issue events at the same times in the same order — only the
    per-event bookkeeping is cheaper (column indexing instead of
    generator resumption and record objects).
    """

    def __init__(self, engine: Engine, core_id: int,
                 batches: Iterator, issue_width: int, max_outstanding: int,
                 translate: Callable[[int], int],
                 send_miss: Callable, send_writeback: Callable[[int], None],
                 on_finished=None) -> None:
        super().__init__(engine, core_id, iter(()), issue_width,
                         max_outstanding, translate, send_miss,
                         send_writeback, classify=None,
                         on_finished=on_finished)
        self._batches = batches
        self._pc: List[int] = []
        self._vaddr: List[int] = []
        self._write: List[bool] = []
        self._gap: List[int] = []
        self._cursor = 0
        self._n = 0
        #: the retire callback bound once — ``self._miss_done`` at a
        #: call site builds a fresh bound method per miss.
        self._retire = self._miss_done
        #: likewise the issue callback: ``_advance`` schedules it once
        #: per miss, and the closed-form evaluator recognises issue
        #: events by this method's identity.
        self._issue_bound = self._issue_cols

    def _advance(self) -> None:
        i = self._cursor
        if i == self._n:
            batch = next(self._batches, None)
            if batch is None:
                self._draining = True
                self._maybe_finish()
                return
            self._pc = batch.pc
            self._vaddr = batch.vaddr
            self._write = batch.is_write
            self._gap = batch.gap_instr
            self._n = len(batch.pc)
            i = 0
        self._cursor = i + 1
        gap = self._gap[i]
        self.stats.instructions += gap
        # same issue event, carrying columns instead of a record object
        self._engine.schedule(gap / self._issue_width, self._issue_bound,
                              self._pc[i], self._vaddr[i], self._write[i])

    def _issue_cols(self, pc: int, vaddr: int, is_write: bool) -> None:
        """``Core._issue`` with the miss-mode-only branches inlined
        (batch mode never runs a cache hierarchy, so ``classify`` is
        always None and ``_track_dirty`` always tracks)."""
        stats = self.stats
        stats.accesses += 1
        paddr = self._translate(vaddr)
        self._outstanding += 1
        stats.misses_issued += 1
        if is_write:
            fifo = self._dirty_fifo
            fifo.append(paddr)
            if len(fifo) > DIRTY_FIFO_DEPTH:
                self._send_writeback(fifo.popleft())
        self._send_miss(paddr, is_write, pc, self._retire)
        if self._outstanding < self._max_outstanding:
            self._advance()
        else:
            self._blocked = True
            stats.stall_events += 1

    def _miss_done(self, when: float) -> None:
        """``Core._miss_done`` with the ``_maybe_finish`` call gated on
        ``_draining`` (its only effect outside the drain phase is three
        attribute reads per retired miss)."""
        self._outstanding -= 1
        self.stats.misses_retired += 1
        if self._blocked:
            self._blocked = False
            self._advance()
        if self._draining:
            self._maybe_finish()


class BatchFlatMemoryController(FlatMemoryController):
    """Controller twin with an allocation-lean demand data plane.

    The scheme-decision points are unchanged — ``access_fast`` applies
    exactly the state transitions ``access`` would, and anything it
    declines (multi-stage plans, background traffic, migrations) takes
    the inherited scalar path.  When the oracle or span tracing is
    active every request takes the scalar path (their hooks consume
    plan objects).
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: recycled transactions for the compatibility front door
        #: (``mshr_entries = 0``; with an MSHR file the file owns them).
        self._pool: List[MemoryRequest] = []
        #: fast-shape consult outcome counters (two-tier clock
        #: attribution: the per-scheme decline rate is
        #: ``declined / (accepted + declined)``).  Pure observation —
        #: incremented outside the simulated timeline, never read by it.
        self.fast_accepted = 0
        self.fast_declined = 0

    # ------------------------------------------------------------------
    def handle_miss(self, paddr: int, is_write: bool, pc: int,
                    on_done: Callable[[float], None]) -> None:
        if self.spans is not None:
            super().handle_miss(paddr, is_write, pc, on_done)
            return
        pool = self._pool
        if pool:
            txn = pool.pop()
            txn.paddr = paddr
            txn.is_write = is_write
            txn.pc = pc
            txn.issue_time = self._engine.now
            txn.state = QUEUED
        else:
            txn = MemoryRequest(paddr, is_write, pc, self._engine.now)
        txn.waiters.append(on_done)
        self.handle_request(txn)

    def arm_warmup_halt(self, threshold: int) -> None:
        """Wrap ``handle_request`` so the engine halts at the event
        during which the scheme's miss count crosses ``threshold`` —
        the batch twin of ``System.run``'s per-event warmup check (the
        count only moves inside demand dispatch, so checking here hits
        the same event boundary the step loop's check would).  The
        wrapper unbinds itself at the crossing, so steady state pays
        nothing."""
        inner = type(self).handle_request
        stats = self.scheme.stats
        halt = self._engine.halt
        armed = [True]

        def checking(txn: MemoryRequest) -> None:
            inner(self, txn)
            if armed[0] and stats.misses >= threshold:
                # disarm first: a stalled request may have captured this
                # wrapper in a scheduled retry, which must not halt the
                # steady-state loop when it fires post-warmup.
                armed[0] = False
                del self.handle_request
                halt()

        def disarm() -> None:
            if armed[0]:
                armed[0] = False
                del self.handle_request

        self.handle_request = checking
        #: the closed-form evaluator inlines the dispatch body and so
        #: performs the threshold check itself; when it fires it disarms
        #: this wrapper through the hook so that rare generic-dispatch
        #: events during warmup (MSHR drains, stalled retries) still go
        #: through ``checking`` until then.
        self._disarm_warmup = disarm

    def _recycle(self, txn: MemoryRequest) -> None:
        """Return a completed fast-path transaction to the pool (called
        from ``MemoryRequest.fast_done`` when no MSHR file owns it)."""
        txn.waiters.clear()
        txn.span = None
        pool = self._pool
        if len(pool) < _TXN_POOL_CAP:
            pool.append(txn)

    # ------------------------------------------------------------------
    def handle_request(self, txn: MemoryRequest) -> None:
        if self.oracle is not None or self.spans is not None:
            # validation / tracing hooks consume plan objects: scalar
            # per-request logic, batched trace generation unchanged.
            super().handle_request(txn)
            return
        now = self._engine.now
        if now < self._stall_until:
            self._engine.schedule_at(
                self._stall_until, self.handle_request, txn)
            return
        txn.state = DISPATCHED
        txn.dispatch_time = now
        txn.controller = self
        fast = self.scheme.access_fast(txn.paddr, txn.is_write, txn.pc)
        stats = self.stats
        if fast is not None:
            self.fast_accepted += 1
            is_nm, addr, size, op_write = fast
            if is_nm:
                stats.demand_nm_bytes += size
                device = self._nm
            else:
                stats.demand_fm_bytes += size
                device = self._fm
            self.inflight += 1
            txn.state = STAGING
            device.access_turbo(addr, size, op_write, True, txn.fast_done)
            return
        self._dispatch_declined(txn, now)

    def _dispatch_declined(self, txn: MemoryRequest, now: float) -> None:
        """Scheme declined the fast shape: build the full plan,
        mirroring the scalar ``handle_request`` step for step.  Split
        out so the closed-form evaluator (which inlines the accepted
        shape) can call the cold half directly."""
        self.fast_declined += 1
        plan = self.scheme.access(txn.paddr, txn.is_write, txn.pc)
        txn.plan = plan
        txn.stages = plan.stages
        self._account(plan)
        nm = self._nm
        fm = self._fm
        for op in plan.background:
            (nm if op.level is Level.NM else fm).access_turbo(
                op.addr, op.size, op.is_write, False, None)
        self.inflight += 1
        txn.state = STAGING
        stages = plan.stages
        if len(stages) == 1 and len(stages[0]) == 1:
            # single critical-path op: fuse the stage walk + completion.
            op = stages[0][0]
            (nm if op.level is Level.NM else fm).access_turbo(
                op.addr, op.size, op.is_write, True, txn.fast_done)
            return
        txn.stage_index = -1
        self._advance(txn, now)

    def _advance(self, txn: MemoryRequest, when: float) -> None:
        """Stage walk twin: each demand op goes through the devices'
        fused dispatcher.  Span-tracked transactions keep the scalar
        walk (the span rides every chunk there)."""
        if txn.span is not None:
            super()._advance(txn, when)
            return
        stages = txn.stages
        n = len(stages)
        i = txn.stage_index + 1
        nm = self._nm
        fm = self._fm
        while i < n:
            ops = stages[i]
            if ops:
                txn.stage_index = i
                txn.remaining_ops = len(ops)
                op_done = txn.op_done
                for op in ops:
                    (nm if op.level is Level.NM else fm).access_turbo(
                        op.addr, op.size, op.is_write, True, op_done)
                return
            i += 1
        self._complete(txn, self._engine.now)

    # ------------------------------------------------------------------
    def handle_writeback(self, paddr: int) -> None:
        if self.oracle is not None:
            super().handle_writeback(paddr)
            return
        # inline of scheme.writeback + _account + _issue for the one
        # shape writebacks ever take: a 64 B background write at the
        # data's current location.
        level, offset = self.scheme.locate(paddr)
        aligned = offset - offset % 64
        stats = self.stats
        stats.writebacks += 1
        if level is Level.NM:
            stats.background_nm_bytes += 64
            device = self._nm
        else:
            stats.background_fm_bytes += 64
            device = self._fm
        device.access_turbo(aligned, 64, True, False, None)
