"""Trace-driven CPU substrate and the flat-memory controller."""

from repro.cpu.controller import ControllerStats, FlatMemoryController
from repro.cpu.core import Core, CoreStats
from repro.cpu.system import RunResult, System

__all__ = ["ControllerStats", "Core", "CoreStats", "FlatMemoryController",
           "RunResult", "System"]
