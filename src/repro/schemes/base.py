"""Scheme protocol: how a flat-memory organisation talks to the system.

A scheme is the hardware remapping logic between the LLC miss stream and
the two memory devices.  For each miss it returns an :class:`AccessPlan`:

* ``stages`` — the *critical path*: a list of stages, each a list of
  device operations issued in parallel; stage *i+1* starts when stage
  *i* completes; the miss returns to the core when the last stage
  completes.  (E.g. CAMEO's "NM tag+data read, then FM read on
  mismatch" is two stages.)
* ``background`` — traffic that does not block the core (swap installs,
  displaced-data writebacks, migrations, prefetches) but competes for
  device bandwidth.
* ``serviced_from`` — which level supplied the demand data; the access
  rate (Eq. 1 of the paper) is the fraction of misses serviced from NM.

Metadata state changes are applied *synchronously* inside
:meth:`MemoryScheme.access` (standard trace-driven practice); only the
timing is deferred to the plan.  :meth:`MemoryScheme.locate` exposes the
current storage location of any flat address so the test-suite can check
the fundamental part-of-memory invariant: **the mapping from flat
addresses to storage slots is a bijection** (no duplication, no loss —
unlike a cache, NM data is the only copy).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Tuple

from repro.xmem.address import AddressSpace


class InvariantViolation(AssertionError):
    """A scheme's remapping metadata is internally inconsistent.

    Raised by :meth:`MemoryScheme.check_invariants` and by the
    differential oracle (:mod:`repro.validate`); subclasses
    ``AssertionError`` so plain ``pytest.raises(AssertionError)`` also
    catches it."""


class Level(Enum):
    """One of the two memory levels."""

    NM = "nm"
    FM = "fm"


class Op:
    """One device operation: ``size`` bytes at device-local ``addr``.

    Allocation-lean: a hand-rolled slotted class rather than a frozen
    dataclass — a simulation constructs millions of these and the
    frozen-dataclass ``__init__`` (one ``object.__setattr__`` per
    field) was a measurable slice of both engines' plan machinery.
    Nothing compares or hashes ops, so the generated ``__eq__``/
    ``__hash__`` are not missed; the per-op sanity check is hoisted
    into :meth:`validate`, which the differential oracle (and any test
    that wants it) calls explicitly.  The devices still bounds-check
    every access against their capacity, so a malformed op cannot
    silently corrupt a run even without the oracle."""

    __slots__ = ("level", "addr", "size", "is_write")

    def __init__(self, level: Level, addr: int, size: int,
                 is_write: bool) -> None:
        self.level = level
        self.addr = addr
        self.size = size
        self.is_write = is_write

    def __repr__(self) -> str:
        return (f"Op(level={self.level}, addr={self.addr}, "
                f"size={self.size}, is_write={self.is_write})")

    def validate(self) -> "Op":
        """Debug-only sanity check (raises ``ValueError``); returns the
        op so call sites can chain it."""
        if self.addr < 0 or self.size <= 0:
            raise ValueError("op must have non-negative addr, positive size")
        return self


@dataclass(slots=True)
class AccessPlan:
    """What one LLC miss costs and where it was serviced from."""

    serviced_from: Level
    stages: List[List[Op]] = field(default_factory=list)
    background: List[Op] = field(default_factory=list)
    #: True when bandwidth balancing deliberately routed this to FM.
    bypassed: bool = False
    #: free-form tag used by tests ("row" of Table I, etc.)
    note: str = ""
    #: True when a hot-block lock determined the service location
    #: (Table I lock rows); span tracing tags such rows distinctly.
    locked: bool = False

    # cheap constructors for the hot common shapes -----------------------
    @classmethod
    def single(cls, serviced_from: Level, op: Op, note: str = "",
               bypassed: bool = False, locked: bool = False) -> "AccessPlan":
        """One critical-path op, no background — the hot-hit shape."""
        return cls(serviced_from, [[op]], [], bypassed, note, locked)

    @classmethod
    def background_only(cls, serviced_from: Level, ops: List[Op],
                        note: str = "") -> "AccessPlan":
        """No critical path (writebacks, pure installs)."""
        return cls(serviced_from, [], ops, False, note)

    def critical_ops(self) -> List[Op]:
        """All critical-path operations, flattened across stages."""
        return [op for stage in self.stages for op in stage]

    def total_bytes(self) -> int:
        """Total bytes this plan moves (critical + background)."""
        return sum(op.size for op in self.critical_ops()) + sum(
            op.size for op in self.background
        )

    def validate(self) -> "AccessPlan":
        """Debug-only: validate every op (see :meth:`Op.validate`)."""
        for stage in self.stages:
            for op in stage:
                op.validate()
        for op in self.background:
            op.validate()
        return self


@dataclass
class SchemeStats:
    """Counters every scheme maintains via ``record_plan``."""

    misses: int = 0
    nm_serviced: int = 0
    fm_serviced: int = 0
    bypassed: int = 0
    subblock_swaps: int = 0
    block_migrations: int = 0

    @property
    def access_rate(self) -> float:
        """Fraction of LLC misses serviced from NM (paper Eq. 1)."""
        return self.nm_serviced / self.misses if self.misses else 0.0

    def reset(self) -> None:
        """Zero every counter (used for warmup discarding)."""
        self.misses = 0
        self.nm_serviced = 0
        self.fm_serviced = 0
        self.bypassed = 0
        self.subblock_swaps = 0
        self.block_migrations = 0


class MemoryScheme(abc.ABC):
    """Base class for all flat-memory organisations."""

    name: str = "abstract"
    #: True when the scheme maintains the part-of-memory bijection (data
    #: *moves*, position-for-position, and every flat subblock lives in
    #: exactly one slot).  Cache-style schemes (Alloy) set this False:
    #: FM is always the home and NM holds copies.
    bijective: bool = True
    #: telemetry hub (:mod:`repro.telemetry`), set by
    #: :meth:`attach_telemetry`; None in normal runs, so event probes in
    #: subclasses reduce to one ``is None`` check on the hot path.
    telemetry = None
    #: the row labels this scheme's plans can carry (``plan.note`` plus
    #: the ``+lock`` variants from :meth:`span_row`).  Span tracing
    #: records these in the artifact so ``repro analyze`` can report
    #: declared-but-unobserved rows instead of silently omitting them.
    SPAN_ROWS: Tuple[str, ...] = ()

    def __init__(self, space: AddressSpace) -> None:
        self.space = space
        self.stats = SchemeStats()

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def access(self, paddr: int, is_write: bool, pc: int = 0) -> AccessPlan:
        """Handle one LLC miss at flat physical address ``paddr``."""

    @abc.abstractmethod
    def locate(self, paddr: int) -> Tuple[Level, int]:
        """Current storage slot (level, device-local byte offset) holding
        the data of flat address ``paddr`` — at subblock granularity."""

    # ------------------------------------------------------------------
    def writeback(self, paddr: int) -> AccessPlan:
        """An LLC dirty eviction: write 64 B to wherever the data lives.

        Pure background traffic; does not move data or update metadata.
        """
        level, offset = self.locate(paddr)
        op = Op(level, offset - offset % 64, 64, True)
        return AccessPlan.background_only(level, [op])

    def epoch_period_cycles(self) -> Optional[float]:
        """Epoch-driven schemes (HMA) return their interval; others None."""
        return None

    def steady_window_certificate(self, now: float) -> float:
        """Tier-2 steady-state certificate: the engine cycle up to which
        this scheme guarantees no *timed* state-changing machinery of
        its own (epoch timers, decay clocks) will fire.

        The closed-form window evaluator (:mod:`repro.sim.window`) runs
        its fused data plane only for events strictly before this
        horizon; at or past it, events re-enter the generic Tier-1
        dispatch and the certificate is re-queried.  Access-driven state
        changes (swaps, locks, installs, predictor updates) need no
        certificate — they happen inside :meth:`access`/
        :meth:`access_fast`, which both tiers call identically.

        The certificate may *under*-shoot (forcing a harmless early
        re-entry into Tier-1 dispatch) but correctness never depends on
        it: the evaluator keeps the controller's epoch-stall check
        inline regardless.  Schemes with no timed machinery return
        ``inf`` — the whole run is one steady-state window.
        """
        period = self.epoch_period_cycles()
        if period is None:
            return float("inf")
        # Next epoch boundary by division.  The controller's timer chain
        # accumulates ``now + period`` floats, so division can only
        # *under*-estimate the true event time — the safe direction.
        return (now // period + 1.0) * period

    def epoch(self) -> Tuple[List[Op], float]:
        """Run one epoch: returns (migration traffic, OS stall cycles)."""
        return [], 0.0

    def on_memory_access(self) -> None:
        """Called once per LLC miss for age/epoch bookkeeping."""

    # ------------------------------------------------------------------
    def access_fast(self, paddr: int, is_write: bool,
                    pc: int = 0) -> Optional[Tuple[bool, int, int, bool]]:
        """Allocation-free fast path for the batch engine's common case.

        When this miss resolves to a *single critical-path op with no
        background traffic*, a scheme may handle it here: apply exactly
        the metadata/counter updates :meth:`access` would (including
        ``record_plan``'s counters) and return ``(is_nm, addr, size,
        op_is_write)`` instead of building an :class:`AccessPlan`
        (``op_is_write`` is the *device op's* write flag — a write miss
        still fetches with a read op in most schemes).  Return ``None`` —
        **before mutating any state** — to make the controller fall
        back to :meth:`access`; the base always does, so schemes opt in
        per hot shape.  Only the batch engine
        (:class:`repro.cpu.batch.BatchFlatMemoryController`) calls
        this; the scalar path never does, and equivalence of the two is
        gated by ``tests/integration/test_batch_equivalence.py``.
        """
        return None

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def check_invariants(self) -> None:
        """Verify the scheme's remapping metadata is self-consistent.

        Every scheme must implement this: it is the per-scheme half of
        the differential oracle (:mod:`repro.validate`) — the shadow
        memory checks *where data is*, this hook checks that the
        scheme's own bookkeeping structures agree with each other
        (forward and reverse maps mutual, residency bits legal, lock
        owners coherent, ...).  Raises :class:`InvariantViolation` on
        the first inconsistency; returns None when clean.  Must be
        side-effect free: it is called mid-run between accesses.
        """

    def _invariant(self, condition: bool, message: str) -> None:
        """Raise :class:`InvariantViolation` unless ``condition``."""
        if not condition:
            raise InvariantViolation(f"{self.name}: {message}")

    # ------------------------------------------------------------------
    def attach_telemetry(self, hub) -> None:
        """Register this scheme's signals with a telemetry hub.

        The base registers the counters every scheme maintains through
        ``record_plan`` (miss/service split, swap and migration rates);
        subclasses extend with their mechanism-specific probes and event
        hooks.  All probes are *pull*-based — registration stores a
        closure over counters the scheme already updates, so enabling
        telemetry adds no per-access work here.
        """
        self.telemetry = hub
        stats = self.stats  # warmup reset keeps the object identity
        hub.meter("scheme.misses", lambda: stats.misses)
        hub.meter("scheme.nm_serviced", lambda: stats.nm_serviced)
        hub.meter("scheme.fm_serviced", lambda: stats.fm_serviced)
        hub.meter("scheme.bypassed", lambda: stats.bypassed)
        hub.meter("scheme.subblock_swaps", lambda: stats.subblock_swaps)
        hub.meter("scheme.block_migrations", lambda: stats.block_migrations)
        hub.gauge("scheme.access_rate", lambda: stats.access_rate, trace=True)

    # ------------------------------------------------------------------
    def span_row(self, plan: AccessPlan) -> str:
        """Table-I-style row label for per-request latency attribution.

        Defaults to the plan's ``note`` (the Table I row for SILC-FM,
        hit/miss/swap tags for the comparison schemes), suffixed with
        ``+lock`` when a hot-block lock pinned the decision and the note
        does not already say so.  Only called for *sampled* requests —
        never on the plain hot path."""
        row = plan.note or plan.serviced_from.value
        if plan.locked and "lock" not in row:
            row += "+lock"
        return row

    # ------------------------------------------------------------------
    def record_plan(self, plan: AccessPlan) -> None:
        """Fold one access plan into the scheme's counters."""
        self.stats.misses += 1
        if plan.bypassed:
            self.stats.bypassed += 1
        if plan.serviced_from is Level.NM:
            self.stats.nm_serviced += 1
        else:
            self.stats.fm_serviced += 1

    # helpers shared by subclasses ----------------------------------------
    def _nm_data_op(self, nm_offset: int, size: int = 64,
                    is_write: bool = False) -> Op:
        return Op(Level.NM, nm_offset, size, is_write)

    def _fm_data_op(self, fm_offset: int, size: int = 64,
                    is_write: bool = False) -> Op:
        return Op(Level.FM, fm_offset, size, is_write)
