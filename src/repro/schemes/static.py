"""Static placement schemes: no hardware migration.

* :class:`StaticScheme` — data stays at its allocated physical frame
  forever.  Combined with a ``fm_only`` frame allocator it is the
  paper's **baseline** (system without die-stacked DRAM); with a
  ``random`` allocator it is the **Random** comparison scheme; with
  ``nm_first`` it is a greedy static placement.

The interesting behaviour lives entirely in the OS frame-allocation
policy (:class:`repro.xmem.translation.FrameAllocator`); the scheme
itself is the identity mapping, which also makes it the reference point
for the part-of-memory bijection tests.
"""

from __future__ import annotations

from typing import Tuple

from repro.schemes.base import AccessPlan, Level, MemoryScheme
from repro.xmem.address import AddressSpace


class StaticScheme(MemoryScheme):
    """Identity mapping: the flat address *is* the storage location."""

    name = "static"
    SPAN_ROWS = ("static",)

    def __init__(self, space: AddressSpace) -> None:
        super().__init__(space)

    def access(self, paddr: int, is_write: bool, pc: int = 0) -> AccessPlan:
        self.on_memory_access()
        level, offset = self.locate(paddr)
        aligned = offset - offset % 64
        plan = AccessPlan.single(
            level, self._op(level, aligned, is_write), "static")
        self.record_plan(plan)
        return plan

    def access_fast(self, paddr: int, is_write: bool, pc: int = 0):
        """Batch-engine fast path: every static access is one 64 B op
        with no background traffic, so the whole of :meth:`access`
        (locate + record_plan) inlines here."""
        stats = self.stats
        stats.misses += 1
        space = self.space
        if space.is_nm(paddr):
            stats.nm_serviced += 1
            offset = space.nm_offset(paddr)
            return (True, offset - offset % 64, 64, is_write)
        stats.fm_serviced += 1
        offset = space.fm_offset(paddr)
        return (False, offset - offset % 64, 64, is_write)

    def steady_window_certificate(self, now: float) -> float:
        """Static placement never changes state on a clock — the whole
        run is one closed-form window."""
        return float("inf")

    def locate(self, paddr: int) -> Tuple[Level, int]:
        if self.space.is_nm(paddr):
            return Level.NM, self.space.nm_offset(paddr)
        return Level.FM, self.space.fm_offset(paddr)

    def attach_telemetry(self, hub) -> None:
        """Static placement moves nothing, so beyond the base signals
        only the placement split itself is interesting: the NM service
        share of a static scheme is purely the OS frame allocator's
        doing (``fm_only`` pins it at 0, ``random`` at ~NM/total)."""
        super().attach_telemetry(hub)
        hub.gauge("static.nm_service_share",
                  lambda: (self.stats.nm_serviced / self.stats.misses
                           if self.stats.misses else 0.0))

    def check_invariants(self) -> None:
        """The identity mapping carries no mutable metadata; verify the
        address-space split itself is coherent (the oracle's shadow
        covers the rest)."""
        self._invariant(self.space.nm_bytes + self.space.fm_bytes
                        == self.space.total_bytes,
                        "NM+FM regions do not tile the flat space")
        self._invariant(self.locate(0) == (Level.NM, 0),
                        "flat address 0 must be NM-resident, offset 0")
        first_fm = self.space.nm_bytes
        self._invariant(self.locate(first_fm) == (Level.FM, 0),
                        "first FM address must map to FM offset 0")

    def _op(self, level: Level, offset: int, is_write: bool):
        if level is Level.NM:
            return self._nm_data_op(offset, is_write=is_write)
        return self._fm_data_op(offset, is_write=is_write)
