"""CAMEO (Chou et al., MICRO 2014) and CAMEO+prefetch.

CAMEO manages the flat space at 64 B granularity.  NM provides one slot
per *congruence group*; group ``g`` contains subblocks
``{g, g+S, g+2S, ...}`` (``S`` = NM slots), exactly one of which is in NM
at any time, the rest permuted over the group's FM homes.  The remap
entry (line-location metadata) is stored **next to the data** in the NM
row, fetched in the same burst (a 72 B access instead of 64 B), so the
tag check costs no extra request — but an FM access is always serialised
behind that NM tag read.

CAMEOP is the paper's strengthened variant: on a miss it additionally
prefetch-swaps the next three subblocks (the paper found 3 lines best),
buying spatial locality at the cost of extra swap bandwidth.

The scheme is direct-mapped by construction, so conflict misses in
low-associativity-tolerant workloads are its weakness (Section II-B).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.schemes.base import AccessPlan, Level, MemoryScheme, Op
from repro.sim.config import SUBBLOCK_BYTES
from repro.xmem.address import AddressSpace

#: 64 B data + 8 B line-location metadata fetched in one extended burst.
DATA_PLUS_META_BYTES = SUBBLOCK_BYTES + 8


class CameoScheme(MemoryScheme):
    """CAMEO: congruence-group swapping at 64 B granularity."""

    name = "cameo"
    SPAN_ROWS = ("nm-hit", "fm-swap")

    def __init__(self, space: AddressSpace) -> None:
        super().__init__(space)
        #: NM subblock slots == subblocks in the NM region.
        self.num_slots = space.nm_bytes // SUBBLOCK_BYTES
        self._total_subblocks = space.total_bytes // SUBBLOCK_BYTES
        #: slot g currently holds subblock _present[g] (init: its own).
        self._present: List[int] = list(range(self.num_slots))
        #: displaced member -> FM home (subblock number) storing it now.
        #: Members at their own home are absent.
        self._home_of: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def access(self, paddr: int, is_write: bool, pc: int = 0) -> AccessPlan:
        self.on_memory_access()
        plan = self._demand_access(paddr)
        self.record_plan(plan)
        return plan

    def _demand_access(self, paddr: int) -> AccessPlan:
        sb = paddr // SUBBLOCK_BYTES
        group = sb % self.num_slots
        tag_read = Op(Level.NM, group * SUBBLOCK_BYTES, DATA_PLUS_META_BYTES, False)
        if self._present[group] == sb:
            return AccessPlan.single(Level.NM, tag_read, "nm-hit")

        home = self._home_of.get(sb, sb)
        fm_read = Op(Level.FM, self._fm_offset_of_subblock(home), SUBBLOCK_BYTES, False)
        background = self._swap_in(group, sb, home)
        return AccessPlan(
            Level.FM, [[tag_read], [fm_read]], background, False, "fm-swap")

    def access_fast(self, paddr: int, is_write: bool, pc: int = 0):
        """Batch-engine fast path: an NM hit is one extended-burst read
        with no background.  Misses swap (and, in CAMEOP, prefetch), so
        they fall back to :meth:`access` — before any state changes.
        The hit path is identical in both CAMEO variants, so CAMEOP
        inherits this as-is."""
        sb = paddr // SUBBLOCK_BYTES
        group = sb % self.num_slots
        if self._present[group] != sb:
            return None
        stats = self.stats
        stats.misses += 1
        stats.nm_serviced += 1
        return (True, group * SUBBLOCK_BYTES, DATA_PLUS_META_BYTES, False)

    def steady_window_certificate(self, now: float) -> float:
        """CAMEO's swaps are access-driven (they fire inside ``access``,
        never from a timer), so the certificate is unbounded.  CAMEOP's
        prefetches ride the same access path and inherit this."""
        return float("inf")

    def _swap_in(self, group: int, sb: int, home: int) -> List[Op]:
        """Install ``sb`` (read from FM ``home``) into NM slot ``group``,
        displacing the current occupant into ``home``."""
        occupant = self._present[group]
        self._present[group] = sb
        self._home_of.pop(sb, None)
        if occupant == home:
            # occupant returns to its own home
            self._home_of.pop(occupant, None)
        else:
            self._home_of[occupant] = home
        self.stats.subblock_swaps += 1
        return [
            # install new line + updated metadata into the NM row
            Op(Level.NM, group * SUBBLOCK_BYTES, DATA_PLUS_META_BYTES, True),
            # displaced occupant written to the vacated FM home
            Op(Level.FM, self._fm_offset_of_subblock(home), SUBBLOCK_BYTES, True),
        ]

    # ------------------------------------------------------------------
    def locate(self, paddr: int) -> Tuple[Level, int]:
        sb = paddr // SUBBLOCK_BYTES
        within = paddr % SUBBLOCK_BYTES
        group = sb % self.num_slots
        if self._present[group] == sb:
            return Level.NM, group * SUBBLOCK_BYTES + within
        home = self._home_of.get(sb, sb)
        return Level.FM, self._fm_offset_of_subblock(home) + within

    def _fm_offset_of_subblock(self, subblock: int) -> int:
        """Device-local FM offset of a global subblock home (must be FM)."""
        offset = subblock * SUBBLOCK_BYTES - self.space.nm_bytes
        if offset < 0:
            raise ValueError(f"subblock {subblock} is an NM home, not FM")
        return offset

    def attach_telemetry(self, hub) -> None:
        """CAMEO's swap traffic is already metered by the base; add the
        displacement pressure (how many lines live away from home) —
        the conflict-miss signal the paper's Section II-B critique of
        direct mapping is about."""
        super().attach_telemetry(hub)
        hub.gauge("cameo.displaced_lines", lambda: float(len(self._home_of)))

    def check_invariants(self) -> None:
        """Congruence-group bookkeeping consistency: every slot holds a
        member of its own group, and the displaced-member map never
        duplicates a home or contradicts slot occupancy."""
        for group, occupant in enumerate(self._present):
            self._invariant(0 <= occupant < self._total_subblocks,
                            f"slot {group} holds out-of-space line {occupant}")
            self._invariant(occupant % self.num_slots == group,
                            f"slot {group} holds line {occupant} from a "
                            "different congruence group")
        homes_seen = {}
        for member, home in self._home_of.items():
            self._invariant(member % self.num_slots == home % self.num_slots,
                            f"line {member} stored at home {home} outside "
                            "its congruence group")
            self._invariant(home >= self.num_slots,
                            f"line {member} claims NM-range home {home}")
            self._invariant(home < self._total_subblocks,
                            f"line {member} home {home} out of space")
            self._invariant(self._present[member % self.num_slots] != member,
                            f"line {member} recorded as displaced while its "
                            "NM slot also holds it (duplication)")
            self._invariant(home not in homes_seen,
                            f"FM home {home} stores both line "
                            f"{homes_seen.get(home)} and line {member}")
            homes_seen[home] = member

    # exposed for tests ----------------------------------------------------
    def group_members(self, group: int) -> List[int]:
        return list(range(group, self._total_subblocks, self.num_slots))

    def slot_occupant(self, group: int) -> int:
        return self._present[group]


class CameoPrefetchScheme(CameoScheme):
    """CAMEO with next-N-line prefetching (the paper's CAMEOP, N=3)."""

    name = "cameop"

    def __init__(self, space: AddressSpace, prefetch_lines: int = 3) -> None:
        super().__init__(space)
        if prefetch_lines < 1:
            raise ValueError("prefetch_lines must be >= 1")
        self.prefetch_lines = prefetch_lines
        self.prefetches_issued = 0

    def access(self, paddr: int, is_write: bool, pc: int = 0) -> AccessPlan:
        self.on_memory_access()
        plan = self._demand_access(paddr)
        if plan.serviced_from is Level.FM:
            sb = paddr // SUBBLOCK_BYTES
            for offset in range(1, self.prefetch_lines + 1):
                nxt = sb + offset
                if nxt >= self._total_subblocks:
                    break
                plan.background.extend(self._prefetch(nxt))
        self.record_plan(plan)
        return plan

    def _prefetch(self, sb: int) -> List[Op]:
        """Swap ``sb`` into its NM slot in the background (tag read, FM
        fetch, install, displaced writeback).

        Prefetches are speculative, so they are not allowed to displace
        a line that earned its slot through a demand swap — only slots
        still holding their NM-native line accept prefetched data.
        Unfiltered prefetching evicts demand-hot lines and loses to
        plain CAMEO (the paper notes naive prefetching "wastes
        bandwidth as those prefetched subblocks are not always useful").
        """
        group = sb % self.num_slots
        if self._present[group] == sb:
            return []
        if self._present[group] != group:
            return []  # slot owned by a demand-swapped line: keep it
        home = self._home_of.get(sb, sb)
        self.prefetches_issued += 1
        ops = [
            Op(Level.NM, group * SUBBLOCK_BYTES, DATA_PLUS_META_BYTES, False),
            Op(Level.FM, self._fm_offset_of_subblock(home), SUBBLOCK_BYTES, False),
        ]
        ops.extend(self._swap_in(group, sb, home))
        return ops
