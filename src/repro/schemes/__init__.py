"""Flat-memory organisations: the comparison schemes and the protocol
they share with SILC-FM."""

from repro.schemes.alloycache import AlloyCacheScheme
from repro.schemes.base import AccessPlan, Level, MemoryScheme, Op, SchemeStats
from repro.schemes.cameo import CameoPrefetchScheme, CameoScheme
from repro.schemes.hma import HmaScheme
from repro.schemes.pom import PomScheme
from repro.schemes.static import StaticScheme

__all__ = [
    "AccessPlan",
    "AlloyCacheScheme",
    "CameoPrefetchScheme",
    "CameoScheme",
    "HmaScheme",
    "Level",
    "MemoryScheme",
    "Op",
    "PomScheme",
    "SchemeStats",
    "StaticScheme",
]
