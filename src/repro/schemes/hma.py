"""HMA — epoch-based OS-managed page migration (Meswani et al.,
HPCA 2015), as characterised in the SILC-FM paper.

The OS counts page accesses during an epoch; at the epoch boundary it
sweeps the counters, picks the hottest pages (threshold-marked, up to NM
capacity), and bulk-migrates them into NM with **fully associative**
placement — the advantage CAMEO's direct mapping lacks (libquantum), at
the cost of:

* epoch-boundary-only adaptation (short-lived hot pages are missed —
  gemsFDTD's weakness);
* heavy software overhead per migration: PTE updates, TLB shootdowns and
  a counter sweep, modelled as a stall applied to all cores while the
  OS runs, plus the bulk 2 KB-per-page migration traffic.

Between epochs the mapping is frozen: demand accesses go wherever the
page currently resides.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.schemes.base import AccessPlan, Level, MemoryScheme, Op
from repro.sim.config import BLOCK_BYTES, SUBBLOCK_BYTES
from repro.xmem.address import AddressSpace

#: Epoch length in CPU cycles.  The per-page OS cost (TLB shootdown
#: IPIs to 16 cores, PTE updates) is a hardware constant that does NOT
#: shrink with simulation scale, so the epoch must stay long enough to
#: amortise it — which is exactly why the paper's HMA reacts slowly to
#: hot-working-set changes.
DEFAULT_EPOCH_CYCLES = 200_000.0
#: minimum epoch access count for a page to be migration-eligible.
DEFAULT_HOT_THRESHOLD = 16
#: OS stall per migrated page: PTE update + amortised (batched) TLB
#: shootdown bookkeeping.  The 2 KB copies themselves are modelled
#: explicitly as DRAM traffic (they compete for bandwidth), so the
#: global stall covers only the work that genuinely freezes the cores.
PER_PAGE_OS_CYCLES = 50.0
#: fixed epoch cost: counter sweep + context switching.
EPOCH_BASE_OS_CYCLES = 10_000.0
#: hysteresis: an FM page must be this much hotter than the coldest NM
#: resident it would displace before the OS migrates it.  Without this
#: the epoch ranking churns on statistical noise among equally-warm
#: pages, bulk-swapping 2 KB pages for no benefit.
MIGRATION_HYSTERESIS = 2.0


class HmaScheme(MemoryScheme):
    """Epoch-based hot-page migration with fully associative NM."""

    name = "hma"
    SPAN_ROWS = ("nm-resident", "fm-resident")

    def __init__(self, space: AddressSpace,
                 epoch_cycles: float = DEFAULT_EPOCH_CYCLES,
                 hot_threshold: int = DEFAULT_HOT_THRESHOLD) -> None:
        super().__init__(space)
        if epoch_cycles <= 0 or hot_threshold < 1:
            raise ValueError("epoch_cycles and hot_threshold must be positive")
        self.epoch_cycles = epoch_cycles
        self.hot_threshold = hot_threshold
        self.num_frames = space.nm_blocks
        #: NM frame -> global block it currently holds (fully associative).
        self._present: List[int] = list(range(self.num_frames))
        #: block -> NM frame, for blocks currently in NM.
        self._frame_of: Dict[int, int] = {i: i for i in range(self.num_frames)}
        #: displaced block -> FM home block storing it.
        self._home_of: Dict[int, int] = {}
        #: per-block access counts within the current epoch.
        self._counts: Dict[int, int] = {}
        self.epochs_run = 0
        self.pages_migrated = 0

    # ------------------------------------------------------------------
    def access(self, paddr: int, is_write: bool, pc: int = 0) -> AccessPlan:
        self.on_memory_access()
        block = paddr // BLOCK_BYTES
        within = paddr % BLOCK_BYTES
        aligned = within - within % SUBBLOCK_BYTES
        self._counts[block] = self._counts.get(block, 0) + 1

        frame = self._frame_of.get(block)
        if frame is not None:
            plan = AccessPlan.single(
                Level.NM, Op(Level.NM, frame * BLOCK_BYTES + aligned,
                             SUBBLOCK_BYTES, False), "nm-resident")
        else:
            home = self._home_of.get(block, block)
            plan = AccessPlan.single(
                Level.FM, Op(Level.FM,
                             self._fm_offset_of_block(home) + aligned,
                             SUBBLOCK_BYTES, False), "fm-resident")
        self.record_plan(plan)
        return plan

    def access_fast(self, paddr: int, is_write: bool, pc: int = 0):
        """Batch-engine fast path: between epochs the mapping is frozen
        and every access is one subblock read with no background, so
        :meth:`access` inlines entirely (the epoch machinery runs off
        the engine's timer, not from here)."""
        block = paddr // BLOCK_BYTES
        within = paddr % BLOCK_BYTES
        aligned = within - within % SUBBLOCK_BYTES
        counts = self._counts
        counts[block] = counts.get(block, 0) + 1
        stats = self.stats
        stats.misses += 1
        frame = self._frame_of.get(block)
        if frame is not None:
            stats.nm_serviced += 1
            return (True, frame * BLOCK_BYTES + aligned,
                    SUBBLOCK_BYTES, False)
        stats.fm_serviced += 1
        home = self._home_of.get(block, block)
        return (False, self._fm_offset_of_block(home) + aligned,
                SUBBLOCK_BYTES, False)

    def attach_telemetry(self, hub) -> None:
        """Epoch-level probes: migration burstiness is HMA's defining
        time-domain behaviour (all movement clusters at epoch
        boundaries), so the per-window migration meter plus the epoch
        instant events make Fig.-8-style phase plots possible."""
        super().attach_telemetry(hub)
        hub.meter("hma.epochs", lambda: self.epochs_run)
        hub.meter("hma.pages_migrated", lambda: self.pages_migrated)
        hub.gauge("hma.tracked_pages", lambda: float(len(self._counts)))

    # ------------------------------------------------------------------
    # epoch machinery
    # ------------------------------------------------------------------
    def epoch_period_cycles(self) -> float:
        return self.epoch_cycles

    def steady_window_certificate(self, now: float) -> float:
        """HMA is the one scheme with timed machinery: the OS epoch
        fires every ``epoch_cycles`` on the controller's timer and both
        bulk-migrates pages and stalls demand dispatch.  The certificate
        is the next epoch boundary (the base-class division form, which
        can only under-shoot the timer chain's accumulated float) — the
        evaluator re-enters Tier-1 dispatch there, runs the epoch event
        and its stall window generically, then re-certifies."""
        period = self.epoch_cycles
        return (now // period + 1.0) * period

    def epoch(self) -> Tuple[List[Op], float]:
        """OS epoch: select hot pages, bulk-migrate, reset counters.

        Returns the migration traffic and the OS stall in cycles.
        """
        self.epochs_run += 1
        hot = sorted(
            (b for b, c in self._counts.items() if c >= self.hot_threshold),
            key=lambda b: -self._counts[b],
        )[: self.num_frames]
        desired = set(hot)

        # victims: NM frames holding pages outside the desired set,
        # coldest first.
        victims = sorted(
            (f for f in range(self.num_frames)
             if self._present[f] not in desired),
            key=lambda f: self._counts.get(self._present[f], 0),
        )
        incoming = [b for b in hot if b not in self._frame_of]

        ops: List[Op] = []
        migrated = 0
        for block, frame in zip(incoming, victims):
            occupant_count = self._counts.get(self._present[frame], 0)
            if self._counts[block] < MIGRATION_HYSTERESIS * max(1, occupant_count):
                continue
            ops.extend(self._swap_into_frame(frame, block))
            migrated += 1
        self.pages_migrated += migrated
        # exponential decay instead of a hard reset: hotness accumulates
        # across epochs, so the ranking separates persistently-hot pages
        # from per-epoch sampling noise and the migration set stabilises
        # (per-epoch resets ping-pong equally-warm pages every epoch).
        self._counts = {
            block: count >> 1
            for block, count in self._counts.items()
            if count >> 1 > 0
        }
        stall = EPOCH_BASE_OS_CYCLES + PER_PAGE_OS_CYCLES * migrated
        if self.telemetry is not None:
            self.telemetry.instant("hma-epoch", cat="epoch",
                                   migrated=migrated, stall_cycles=stall)
        return ops, stall

    def _swap_into_frame(self, frame: int, block: int) -> List[Op]:
        """Bulk-swap ``block`` (in FM) with the occupant of ``frame``."""
        occupant = self._present[frame]
        home = self._home_of.get(block, block)
        self._present[frame] = block
        del self._frame_of[occupant]
        self._frame_of[block] = frame
        self._home_of.pop(block, None)
        if occupant == home:
            self._home_of.pop(occupant, None)
        else:
            self._home_of[occupant] = home
        self.stats.block_migrations += 1
        fm_base = self._fm_offset_of_block(home)
        nm_base = frame * BLOCK_BYTES
        return [
            Op(Level.FM, fm_base, BLOCK_BYTES, False),
            Op(Level.NM, nm_base, BLOCK_BYTES, False),
            Op(Level.NM, nm_base, BLOCK_BYTES, True),
            Op(Level.FM, fm_base, BLOCK_BYTES, True),
        ]

    # ------------------------------------------------------------------
    def locate(self, paddr: int) -> Tuple[Level, int]:
        block = paddr // BLOCK_BYTES
        within = paddr % BLOCK_BYTES
        frame = self._frame_of.get(block)
        if frame is not None:
            return Level.NM, frame * BLOCK_BYTES + within
        home = self._home_of.get(block, block)
        return Level.FM, self._fm_offset_of_block(home) + within

    def _fm_offset_of_block(self, block: int) -> int:
        offset = block * BLOCK_BYTES - self.space.nm_bytes
        if offset < 0:
            raise ValueError(f"block {block} is an NM home, not FM")
        return offset

    def check_invariants(self) -> None:
        """Fully-associative bookkeeping: ``_present`` and ``_frame_of``
        are mutual inverses, and a displaced block is never also
        NM-resident."""
        total_blocks = self.space.total_blocks
        self._invariant(len(self._present) == self.num_frames,
                        "frame table size drifted")
        for frame, block in enumerate(self._present):
            self._invariant(0 <= block < total_blocks,
                            f"frame {frame} holds out-of-space block {block}")
            self._invariant(self._frame_of.get(block) == frame,
                            f"frame {frame} holds block {block} but the "
                            "reverse map disagrees")
        for block, frame in self._frame_of.items():
            self._invariant(0 <= frame < self.num_frames,
                            f"block {block} mapped to bad frame {frame}")
            self._invariant(self._present[frame] == block,
                            f"reverse map says frame {frame} holds block "
                            f"{block} but the frame table disagrees")
        homes_seen = {}
        for block, home in self._home_of.items():
            self._invariant(block not in self._frame_of,
                            f"block {block} is both NM-resident and "
                            "recorded as displaced (duplication)")
            self._invariant(self.space.nm_blocks <= home < total_blocks,
                            f"block {block} claims non-FM home {home}")
            self._invariant(home not in homes_seen,
                            f"FM home {home} stores both block "
                            f"{homes_seen.get(home)} and block {block}")
            homes_seen[home] = block
