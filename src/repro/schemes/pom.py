"""PoM — Part of Memory (Sim et al., ISCA 2014), as characterised in the
SILC-FM paper.

PoM migrates whole 2 KB large blocks.  Each FM block has a competing
access counter; when the counter says the block is hotter than the NM
frame's current occupant by a threshold, the two blocks swap in their
entirety (32 subblocks each way).  The remap table is assumed cached in
SRAM (PoM dedicates a remap cache), so lookups are free; the cost PoM
pays is **migration bandwidth** — 4 KB of traffic per swap decision — and
the lost opportunity while a counter accumulates to the threshold
(Section II-B: "PoM has to accumulate a certain access count until the
migration is triggered, so it achieves a lower performance").

Mapping is direct: FM block ``b`` competes for NM frame ``b mod F``
(``F`` = NM frames).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Tuple

from repro.schemes.base import AccessPlan, Level, MemoryScheme, Op
from repro.sim.config import BLOCK_BYTES, SUBBLOCK_BYTES
from repro.xmem.address import AddressSpace

#: accesses an FM block must accumulate (beyond the NM occupant's count)
#: before a migration is considered worth 4 KB of traffic.
DEFAULT_MIGRATION_THRESHOLD = 16
#: segments whose remap entries fit in PoM's SRAM remap cache (scaled
#: with the rest of the system: PoM's cache covers a fraction of the NM
#: frame count, so cold sets pay a metadata fetch from NM).
DEFAULT_REMAP_CACHE_ENTRIES = 256
#: remap entry size in the NM metadata region.
METADATA_ENTRY_BYTES = 8


class PomScheme(MemoryScheme):
    """Whole-block (2 KB) counter-based migration."""

    name = "pom"
    SPAN_ROWS = ("nm-hit", "fm", "fm-migrate")

    def __init__(self, space: AddressSpace,
                 threshold: int = DEFAULT_MIGRATION_THRESHOLD,
                 remap_cache_entries: int = DEFAULT_REMAP_CACHE_ENTRIES) -> None:
        super().__init__(space)
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if remap_cache_entries < 1:
            raise ValueError("remap cache must have at least one entry")
        self.threshold = threshold
        self.num_frames = space.nm_blocks
        #: LRU set of frames whose remap entry is cached in SRAM; a miss
        #: costs a metadata fetch from the NM metadata region before the
        #: data access can be routed.
        self._remap_cache: "OrderedDict[int, None]" = OrderedDict()
        self._remap_cache_entries = remap_cache_entries
        self.remap_cache_hits = 0
        self.remap_cache_misses = 0
        self._meta_base = space.nm_bytes
        #: NM frame f currently holds large block _present[f] (global
        #: block number; initially its own NM block).
        self._present: List[int] = list(range(self.num_frames))
        #: displaced block -> FM home block storing it now.
        self._home_of: Dict[int, int] = {}
        #: access counters for candidate (non-resident) blocks, per frame.
        self._counters: Dict[int, int] = {}
        #: count of accesses the current occupant has received, per frame.
        self._occupant_count: List[int] = [0] * self.num_frames

    # ------------------------------------------------------------------
    def access(self, paddr: int, is_write: bool, pc: int = 0) -> AccessPlan:
        self.on_memory_access()
        block = paddr // BLOCK_BYTES
        frame = block % self.num_frames
        within = paddr % BLOCK_BYTES
        aligned = within - within % SUBBLOCK_BYTES
        meta_stage = self._remap_lookup(frame)

        if self._present[frame] == block:
            self._occupant_count[frame] += 1
            meta_stage.append([Op(Level.NM, frame * BLOCK_BYTES + aligned,
                                  SUBBLOCK_BYTES, False)])
            plan = AccessPlan(Level.NM, meta_stage, [], False, "nm-hit")
            self.record_plan(plan)
            return plan

        home = self._home_of.get(block, block)
        fm_offset = self._fm_offset_of_block(home) + aligned
        background: List[Op] = []
        self._counters[block] = self._counters.get(block, 0) + 1
        if self._counters[block] >= self._occupant_count[frame] + self.threshold:
            background = self._migrate(frame, block, home)
        meta_stage.append([Op(Level.FM, fm_offset, SUBBLOCK_BYTES, False)])
        plan = AccessPlan(Level.FM, meta_stage, background, False,
                          "fm-migrate" if background else "fm")
        self.record_plan(plan)
        return plan

    def access_fast(self, paddr: int, is_write: bool, pc: int = 0):
        """Batch-engine fast path: with the remap entry cached in SRAM
        the critical path is one subblock op — NM hit, or FM read when
        the competing counter stays under threshold.  Remap-cache misses
        (extra metadata stage) and threshold crossings (4 KB migration)
        fall back to :meth:`access` before any state changes."""
        block = paddr // BLOCK_BYTES
        frame = block % self.num_frames
        cache = self._remap_cache
        if frame not in cache:
            return None
        within = paddr % BLOCK_BYTES
        aligned = within - within % SUBBLOCK_BYTES
        stats = self.stats
        if self._present[frame] == block:
            cache.move_to_end(frame)
            self.remap_cache_hits += 1
            self._occupant_count[frame] += 1
            stats.misses += 1
            stats.nm_serviced += 1
            return (True, frame * BLOCK_BYTES + aligned,
                    SUBBLOCK_BYTES, False)
        count = self._counters.get(block, 0) + 1
        if count >= self._occupant_count[frame] + self.threshold:
            return None  # migration fires: take the full access() path
        cache.move_to_end(frame)
        self.remap_cache_hits += 1
        self._counters[block] = count
        stats.misses += 1
        stats.fm_serviced += 1
        home = self._home_of.get(block, block)
        return (False, self._fm_offset_of_block(home) + aligned,
                SUBBLOCK_BYTES, False)

    def steady_window_certificate(self, now: float) -> float:
        """PoM's competing counters and 4 KB migrations are all
        access-driven; nothing fires on a clock."""
        return float("inf")

    def _remap_lookup(self, frame: int) -> List[List[Op]]:
        """SRAM remap-cache check: a hit routes the access for free, a
        miss prepends an NM metadata fetch to the critical path."""
        if frame in self._remap_cache:
            self._remap_cache.move_to_end(frame)
            self.remap_cache_hits += 1
            return []
        self.remap_cache_misses += 1
        self._remap_cache[frame] = None
        if len(self._remap_cache) > self._remap_cache_entries:
            self._remap_cache.popitem(last=False)
        return [[Op(Level.NM, self._meta_base + frame * METADATA_ENTRY_BYTES,
                    METADATA_ENTRY_BYTES, False)]]

    # ------------------------------------------------------------------
    def _migrate(self, frame: int, block: int, home: int) -> List[Op]:
        """Swap the whole 2 KB of ``block`` (at FM ``home``) with the
        frame's occupant.  Generates 4 KB of background traffic."""
        occupant = self._present[frame]
        self._present[frame] = block
        self._home_of.pop(block, None)
        if occupant == home:
            self._home_of.pop(occupant, None)
        else:
            self._home_of[occupant] = home
        self._occupant_count[frame] = self._counters.pop(block)
        self.stats.block_migrations += 1
        fm_base = self._fm_offset_of_block(home)
        nm_base = frame * BLOCK_BYTES
        return [
            Op(Level.FM, fm_base, BLOCK_BYTES, False),   # fetch new block
            Op(Level.NM, nm_base, BLOCK_BYTES, False),   # read occupant out
            Op(Level.NM, nm_base, BLOCK_BYTES, True),    # install new block
            Op(Level.FM, fm_base, BLOCK_BYTES, True),    # evict occupant
        ]

    # ------------------------------------------------------------------
    def locate(self, paddr: int) -> Tuple[Level, int]:
        block = paddr // BLOCK_BYTES
        within = paddr % BLOCK_BYTES
        frame = block % self.num_frames
        if self._present[frame] == block:
            return Level.NM, frame * BLOCK_BYTES + within
        home = self._home_of.get(block, block)
        return Level.FM, self._fm_offset_of_block(home) + within

    def _fm_offset_of_block(self, block: int) -> int:
        offset = block * BLOCK_BYTES - self.space.nm_bytes
        if offset < 0:
            raise ValueError(f"block {block} is an NM home, not FM")
        return offset

    def attach_telemetry(self, hub) -> None:
        """PoM's costs are migration bandwidth (base block_migrations
        meter) and remap-cache misses on the critical path — expose the
        hit rate plus the counter-table population (how many blocks are
        accumulating toward the migration threshold)."""
        super().attach_telemetry(hub)
        hub.meter("pom.remap_cache_misses", lambda: self.remap_cache_misses)
        hub.gauge("pom.remap_cache_hit_rate", lambda: (
            self.remap_cache_hits /
            (self.remap_cache_hits + self.remap_cache_misses)
            if self.remap_cache_hits + self.remap_cache_misses else 0.0))
        hub.gauge("pom.competing_blocks", lambda: float(len(self._counters)))

    def check_invariants(self) -> None:
        """Direct-mapped block bookkeeping: every frame holds a block of
        its own congruence class, displaced homes are unique FM blocks,
        and competing counters only exist for non-resident blocks."""
        total_blocks = self.space.total_blocks
        for frame, occupant in enumerate(self._present):
            self._invariant(0 <= occupant < total_blocks,
                            f"frame {frame} holds out-of-space block {occupant}")
            self._invariant(occupant % self.num_frames == frame,
                            f"frame {frame} holds block {occupant} from a "
                            "different congruence class")
            self._invariant(self._occupant_count[frame] >= 0,
                            f"frame {frame} occupant count negative")
        homes_seen = {}
        for block, home in self._home_of.items():
            self._invariant(block % self.num_frames == home % self.num_frames,
                            f"block {block} stored at home {home} outside "
                            "its congruence class")
            self._invariant(self.num_frames <= home < total_blocks,
                            f"block {block} claims non-FM home {home}")
            self._invariant(self._present[block % self.num_frames] != block,
                            f"block {block} recorded as displaced while its "
                            "frame also holds it (duplication)")
            self._invariant(home not in homes_seen,
                            f"FM home {home} stores both block "
                            f"{homes_seen.get(home)} and block {block}")
            homes_seen[home] = block
        for block, count in self._counters.items():
            self._invariant(count >= 0, f"block {block} counter negative")
            self._invariant(self._present[block % self.num_frames] != block,
                            f"resident block {block} still has a competing "
                            "counter")

    # exposed for tests ----------------------------------------------------
    def frame_occupant(self, frame: int) -> int:
        return self._present[frame]
