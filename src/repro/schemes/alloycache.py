"""Alloy-Cache-style hardware DRAM cache (Qureshi & Loh, MICRO 2012).

The paper's Section II contrasts part-of-memory designs against using
NM as a big hardware *cache*: direct-mapped at 64 B, the tag alloyed
with the data in one extended burst (a TAD unit), FM always holding the
home copy.  A cache gives up NM's capacity (the OS sees only FM) but
never needs swap-restore machinery, and a 100% hit rate is its optimum
(there is no bandwidth-balancing argument — the paper's Section III-E
point only applies to part-of-memory organisations).

Included so downstream users can quantify the capacity-vs-simplicity
trade the paper's introduction motivates.  Distinctives vs CAMEO:

* FM is the home of *all* data; NM holds copies (no bijection over
  NM+FM — the no-capacity-gain drawback);
* clean evictions are free, dirty ones write back 64 B;
* a miss fills the line from FM (no displaced-line swap writes).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.schemes.base import AccessPlan, Level, MemoryScheme, Op
from repro.sim.config import SUBBLOCK_BYTES
from repro.xmem.address import AddressSpace

#: tag-and-data unit: 64 B line + 8 B tag in one burst.
TAD_BYTES = SUBBLOCK_BYTES + 8


class AlloyCacheScheme(MemoryScheme):
    """NM as a direct-mapped, tag-with-data hardware cache over FM.

    Use with the ``fm_only`` allocation policy: the OS only sees FM
    capacity (the scheme asserts this by construction — NM-space
    addresses are rejected).
    """

    name = "alloy"
    SPAN_ROWS = ("hit", "miss")
    #: a cache is deliberately not a bijection: FM is always the home,
    #: NM holds copies (the oracle validates it in copy-tracking mode).
    bijective = False

    def __init__(self, space: AddressSpace) -> None:
        super().__init__(space)
        self.num_slots = space.nm_bytes // SUBBLOCK_BYTES
        #: slot -> (cached FM line number, dirty)
        self._slot: Dict[int, Tuple[int, bool]] = {}
        self.hits = 0
        self.misses = 0
        self.dirty_writebacks = 0

    # ------------------------------------------------------------------
    def access(self, paddr: int, is_write: bool, pc: int = 0) -> AccessPlan:
        self.on_memory_access()
        if self.space.is_nm(paddr):
            raise ValueError(
                "Alloy cache exposes only FM capacity; allocate pages with "
                "the fm_only policy")
        line = self.space.fm_offset(paddr) // SUBBLOCK_BYTES
        slot = line % self.num_slots
        tad_read = Op(Level.NM, slot * SUBBLOCK_BYTES, TAD_BYTES, False)

        cached = self._slot.get(slot)
        if cached is not None and cached[0] == line:
            self.hits += 1
            if is_write:
                self._slot[slot] = (line, True)
            plan = AccessPlan.single(Level.NM, tad_read, "hit")
            self.record_plan(plan)
            return plan

        self.misses += 1
        background = []
        if cached is not None and cached[1]:
            # dirty victim: write the line back to its FM home
            self.dirty_writebacks += 1
            background.append(
                Op(Level.FM, cached[0] * SUBBLOCK_BYTES, SUBBLOCK_BYTES, True))
        # fill: install line + tag into the slot
        background.append(Op(Level.NM, slot * SUBBLOCK_BYTES, TAD_BYTES, True))
        self._slot[slot] = (line, is_write)
        plan = AccessPlan(
            Level.FM,
            [[tad_read],
             [Op(Level.FM, line * SUBBLOCK_BYTES, SUBBLOCK_BYTES, False)]],
            background, False, "miss")
        self.record_plan(plan)
        return plan

    # ------------------------------------------------------------------
    def access_fast(self, paddr: int, is_write: bool, pc: int = 0):
        """Batch-engine fast path: a cache hit is one TAD read with no
        background.  Misses (two-stage fill + possible dirty victim)
        and NM-space addresses (which :meth:`access` rejects with an
        explanatory error) fall back before any state changes."""
        space = self.space
        if space.is_nm(paddr):
            return None
        line = space.fm_offset(paddr) // SUBBLOCK_BYTES
        slot = line % self.num_slots
        cached = self._slot.get(slot)
        if cached is None or cached[0] != line:
            return None
        self.hits += 1
        if is_write:
            self._slot[slot] = (line, True)
        stats = self.stats
        stats.misses += 1
        stats.nm_serviced += 1
        return (True, slot * SUBBLOCK_BYTES, TAD_BYTES, False)

    def steady_window_certificate(self, now: float) -> float:
        """Alloy's fills and evictions happen per miss, inside
        ``access``; there is no timed machinery to fence."""
        return float("inf")

    # ------------------------------------------------------------------
    def locate(self, paddr: int) -> Tuple[Level, int]:
        """Where the *current* copy of the data is serviced from.

        Note: a cache is deliberately NOT a bijection over NM+FM — FM is
        always the home; NM holds copies.  ``locate`` points at the NM
        copy while it is cached (it may be the only up-to-date copy when
        dirty) and the FM home otherwise.
        """
        if self.space.is_nm(paddr):
            raise ValueError("NM is not part of the address space here")
        offset = self.space.fm_offset(paddr)
        line = offset // SUBBLOCK_BYTES
        slot = line % self.num_slots
        cached = self._slot.get(slot)
        if cached is not None and cached[0] == line:
            return Level.NM, slot * SUBBLOCK_BYTES + offset % SUBBLOCK_BYTES
        return Level.FM, offset

    def attach_telemetry(self, hub) -> None:
        """A cache's story is its hit rate and writeback pressure; the
        part-of-memory swap/migration meters from the base stay at zero
        by construction."""
        super().attach_telemetry(hub)
        hub.gauge("alloy.hit_rate", lambda: self.hit_rate, trace=True)
        hub.meter("alloy.dirty_writebacks", lambda: self.dirty_writebacks)
        hub.gauge("alloy.occupied_slots", lambda: float(len(self._slot)))

    def check_invariants(self) -> None:
        """Tag-array consistency: every cached line maps to the slot it
        occupies and names a real FM line."""
        fm_lines = self.space.fm_bytes // SUBBLOCK_BYTES
        for slot, (line, dirty) in self._slot.items():
            self._invariant(0 <= slot < self.num_slots,
                            f"tag entry for out-of-range slot {slot}")
            self._invariant(0 <= line < fm_lines,
                            f"slot {slot} caches out-of-space FM line {line}")
            self._invariant(line % self.num_slots == slot,
                            f"slot {slot} caches line {line} that maps to "
                            f"slot {line % self.num_slots}")
            self._invariant(isinstance(dirty, bool),
                            f"slot {slot} dirty bit is not a bool")

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def usable_capacity_bytes(self) -> int:
        """The cache's capacity cost: the OS-visible space excludes NM."""
        return self.space.fm_bytes
