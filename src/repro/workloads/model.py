"""Statistical workload model — the reproduction's stand-in for Pin
traces of SPEC CPU2006 Simpoints.

Every flat-memory scheme observes only the post-LLC miss stream, so the
model generates that stream directly from the five characteristics that
drive the paper's results:

* **MPKI** — misses per kilo-instruction; sets the compute gap between
  misses and therefore the bandwidth demand (Table III's low/med/high
  classes).
* **Footprint** — number of distinct 2 KB pages touched; sets the
  pressure on NM capacity (Table III).
* **Hot-set skew** — a fraction of pages receives most accesses; what
  locking and HMA's hot-page detection exploit.
* **Spatial locality** — expected number of distinct subblocks touched
  per page visit; what separates subblock schemes (SILC-FM, CAMEO+P)
  from single-line (CAMEO) and whole-page (PoM) movement.
* **Phase churn** — the hot set drifts every ``phase_misses`` misses;
  what epoch-based HMA is too slow for (gemsfdtd's short-lived pages).

``reference_stream`` additionally expands each miss into cache-hitting
re-references so the real cache hierarchy measures the intended MPKI
(used by the Table III bench and integration tests).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from math import log as _log
from typing import Iterator, List, Optional

from repro.sim.config import BLOCK_BYTES, SUBBLOCK_BYTES, SUBBLOCKS_PER_BLOCK
from repro.workloads.trace import MemoryAccess

#: distinct program counters the generator draws from; PC correlates with
#: the touched page, which is what SILC-FM's PC-indexed structures rely on.
PC_POOL_SIZE = 256
#: code region base so PCs never collide with data addresses.
PC_BASE = 1 << 40


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one synthetic benchmark."""

    name: str
    #: LLC misses per kilo-instruction, per core.
    mpki: float
    #: distinct 2 KB pages touched.
    footprint_pages: int
    #: fraction of the footprint that is hot ...
    hot_fraction: float = 0.10
    #: ... and receives this fraction of the page visits.
    hot_weight: float = 0.80
    #: mean distinct subblocks touched per page visit (1..32).
    spatial_run: float = 4.0
    #: fraction of misses that are writes (dirty fills).
    write_fraction: float = 0.25
    #: hot set drifts after this many misses (None = stable).
    phase_misses: Optional[int] = None
    #: fraction of the hot set replaced at each phase change.
    phase_shift: float = 0.5
    #: fraction of each page's 32 subblocks the program ever touches
    #: (a stable, contiguous region per page).  Below 1.0, whole-page
    #: migration (PoM) fetches data that is never used — the paper's
    #: "number of used unique subblocks within 2KB is rather low".
    page_density: float = 1.0
    #: memory references per instruction (for reference_stream).
    refs_per_instr: float = 0.3
    category: str = "medium"

    def __post_init__(self) -> None:
        if self.mpki <= 0:
            raise ValueError("mpki must be positive")
        if self.footprint_pages < 2:
            raise ValueError("footprint must be at least 2 pages")
        if not 0.0 < self.hot_fraction <= 1.0:
            raise ValueError("hot_fraction in (0, 1]")
        if not 0.0 <= self.hot_weight <= 1.0:
            raise ValueError("hot_weight in [0, 1]")
        if not 1.0 <= self.spatial_run <= SUBBLOCKS_PER_BLOCK:
            raise ValueError("spatial_run in [1, 32]")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction in [0, 1]")
        if not 1.0 / SUBBLOCKS_PER_BLOCK <= self.page_density <= 1.0:
            raise ValueError("page_density in [1/32, 1]")


class WorkloadModel:
    """Generates miss-stream or reference-stream traces for one spec."""

    def __init__(self, spec: WorkloadSpec, seed: int = 1) -> None:
        self.spec = spec
        self._seed = seed

    def _rng(self, tag: str) -> random.Random:
        """Deterministic per-(seed, benchmark, stream-kind) generator.
        zlib.crc32 is used instead of hash() so runs are reproducible
        regardless of PYTHONHASHSEED."""
        digest = zlib.crc32(f"{self.spec.name}:{tag}".encode())
        return random.Random(self._seed * 0x9E3779B1 + digest)

    # ------------------------------------------------------------------
    def miss_stream(self, n_misses: int) -> Iterator[MemoryAccess]:
        """Yield ``n_misses`` LLC-miss records."""
        spec = self.spec
        rng = self._rng("miss")
        hot = self._initial_hot_set(rng)
        pages = spec.footprint_pages
        mean_gap = 1000.0 / spec.mpki
        emitted = 0
        since_phase = 0
        while emitted < n_misses:
            page = self._pick_page(rng, hot, pages)
            active_start, active_len = self._active_region(page)
            run = min(self._run_length(rng), active_len)
            start = rng.randrange(active_len)
            pc = PC_BASE + (page % PC_POOL_SIZE) * 4
            for i in range(run):
                if emitted >= n_misses:
                    break
                subblock = active_start + (start + i) % active_len
                vaddr = page * BLOCK_BYTES + subblock * SUBBLOCK_BYTES
                gap = max(1, int(rng.expovariate(1.0 / mean_gap)))
                yield MemoryAccess(
                    pc=pc,
                    vaddr=vaddr,
                    is_write=rng.random() < spec.write_fraction,
                    gap_instr=gap,
                )
                emitted += 1
                since_phase += 1
            if spec.phase_misses is not None and since_phase >= spec.phase_misses:
                self._shift_hot_set(rng, hot, pages)
                since_phase = 0

    # ------------------------------------------------------------------
    def miss_batches(self, n_misses: int,
                     window: int) -> Iterator["MissBatch"]:
        """Batch-engine twin of :meth:`miss_stream`: yield the same
        ``n_misses`` records, ``window`` at a time, as column arrays.

        **Bit-identical by construction**: the RNG draw sequence is
        replayed exactly — burst headers (page pick, run length, start
        offset) and the two per-access uniforms (gap, then write) are
        drawn scalar in :meth:`miss_stream`'s order, bursts are never
        split for generation (a window boundary mid-burst only chunks
        the *output*, via a carry buffer), and the gap math is the same
        ``-log(1-u)/lambd`` libm expression ``random.expovariate``
        evaluates.  numpy vectorizes the pure column math — subblock
        iota, address/PC synthesis — where element order cannot change
        a value.  Per-page active regions are memoized (they are pure
        in ``page``), which the scalar path recomputes per burst.
        """
        import numpy as np

        from repro.sim import faults

        if window < 1:
            raise ValueError("window must be >= 1")
        spec = self.spec
        rng = self._rng("miss")
        hot = self._initial_hot_set(rng)
        pages = spec.footprint_pages
        mean_gap = 1000.0 / spec.mpki
        lambd = 1.0 / mean_gap
        wf = spec.write_fraction
        random_ = rng.random
        phase_misses = spec.phase_misses
        regions = {}
        # burst-header draws inlined: ``randrange(n)`` is replayed as
        # CPython's ``_randbelow_with_getrandbits`` (k = n.bit_length()
        # bits, redrawn while >= n) so the underlying MT stream advances
        # identically to the scalar generator's method calls.
        getrandbits = rng.getrandbits
        hot_weight = spec.hot_weight
        hot_len = len(hot)
        hot_bits = hot_len.bit_length()
        pages_bits = pages.bit_length()
        run_mean = spec.spatial_run
        run_p = 1.0 / run_mean if run_mean > 1.0 else 1.0
        run_cap = SUBBLOCKS_PER_BLOCK
        # pending output columns (the carry buffer across windows)
        pend_pc: List[int] = []
        pend_vaddr: List[int] = []
        pend_write: List[bool] = []
        pend_gap: List[int] = []
        emitted = 0
        since_phase = 0
        while emitted < n_misses:
            # ---- accumulate bursts until one window is buffered ------
            burst_page: List[int] = []
            burst_as: List[int] = []
            burst_al: List[int] = []
            burst_start: List[int] = []
            burst_k: List[int] = []
            uniforms: List[float] = []
            buffered = len(pend_pc)
            while buffered < window and emitted < n_misses:
                # _pick_page, inlined
                if random_() < hot_weight:
                    r = getrandbits(hot_bits)
                    while r >= hot_len:
                        r = getrandbits(hot_bits)
                    page = hot[r]
                else:
                    r = getrandbits(pages_bits)
                    while r >= pages:
                        r = getrandbits(pages_bits)
                    page = r
                region = regions.get(page)
                if region is None:
                    active_start, active_len = self._active_region(page)
                    region = regions[page] = (
                        active_start, active_len, active_len.bit_length())
                active_start, active_len, len_bits = region
                # _run_length, inlined (geometric, capped at 32)
                run = 1
                if run_mean > 1.0:
                    while random_() > run_p and run < run_cap:
                        run += 1
                if run > active_len:
                    run = active_len
                # randrange(active_len), inlined
                start = getrandbits(len_bits)
                while start >= active_len:
                    start = getrandbits(len_bits)
                k = min(run, n_misses - emitted)
                uniforms += [random_() for _ in range(2 * k)]
                burst_page.append(page)
                burst_as.append(active_start)
                burst_al.append(active_len)
                burst_start.append(start)
                burst_k.append(k)
                buffered += k
                emitted += k
                since_phase += k
                if (phase_misses is not None and since_phase >= phase_misses
                        and emitted < n_misses):
                    self._shift_hot_set(rng, hot, pages)
                    since_phase = 0
            # ---- vectorize the pure column math ----------------------
            if burst_k:
                k_arr = np.asarray(burst_k)
                total = int(k_arr.sum())
                page_r = np.repeat(np.asarray(burst_page), k_arr)
                al_r = np.repeat(np.asarray(burst_al), k_arr)
                offsets = np.cumsum(k_arr) - k_arr
                iota = np.arange(total) - np.repeat(offsets, k_arr)
                sub = (np.repeat(np.asarray(burst_as), k_arr)
                       + (np.repeat(np.asarray(burst_start), k_arr) + iota)
                       % al_r)
                pend_vaddr += (page_r * BLOCK_BYTES
                               + sub * SUBBLOCK_BYTES).tolist()
                pend_pc += (PC_BASE + (page_r % PC_POOL_SIZE) * 4).tolist()
                # exact-arithmetic columns: the same libm expression
                # random.expovariate evaluates (numpy's SIMD log is not
                # guaranteed bit-identical to libm, so the gap math
                # stays scalar over the vector of collected uniforms)
                pend_gap += [max(1, int(-_log(1.0 - u) / lambd))
                             for u in uniforms[0::2]]
                pend_write += [u < wf for u in uniforms[1::2]]
            # ---- emit full windows -----------------------------------
            while len(pend_pc) >= window or (emitted >= n_misses and pend_pc):
                cut = min(window, len(pend_pc))
                batch = MissBatch(pend_pc[:cut], pend_vaddr[:cut],
                                  pend_write[:cut], pend_gap[:cut])
                del pend_pc[:cut], pend_vaddr[:cut]
                del pend_write[:cut], pend_gap[:cut]
                if (faults.ACTIVE == "window-off-by-one"
                        and (pend_pc or emitted < n_misses)):
                    # BUG (test-only): resume the next refill one record
                    # early — the boundary access is emitted twice.
                    pend_pc.insert(0, batch.pc[-1])
                    pend_vaddr.insert(0, batch.vaddr[-1])
                    pend_write.insert(0, batch.is_write[-1])
                    pend_gap.insert(0, batch.gap_instr[-1])
                yield batch

    def reference_stream(self, n_misses: int) -> Iterator[MemoryAccess]:
        """Expand the miss stream with cache-hitting re-references so a
        real hierarchy observes roughly ``spec.mpki`` at the LLC.

        The miss's instruction gap is *redistributed* over the inserted
        re-references (not added to), so the instruction total — and
        therefore the measured MPKI — matches the miss stream's."""
        spec = self.spec
        rng = self._rng("ref")
        recent: List[int] = []
        for miss in self.miss_stream(n_misses):
            total_gap = miss.gap_instr
            n_refs = max(0, int(total_gap * spec.refs_per_instr) - 1)
            per_gap = total_gap // (n_refs + 1)
            remainder = total_gap - per_gap * n_refs
            yield MemoryAccess(pc=miss.pc, vaddr=miss.vaddr,
                               is_write=miss.is_write,
                               gap_instr=max(1, remainder))
            recent.append(miss.vaddr)
            if len(recent) > 32:
                recent.pop(0)
            # re-reference the recent pool; these hit in L1/L2 so the LLC
            # miss count stays the miss stream's.
            for _ in range(n_refs):
                vaddr = rng.choice(recent)
                yield MemoryAccess(
                    pc=PC_BASE + rng.randrange(PC_POOL_SIZE) * 4,
                    vaddr=vaddr,
                    is_write=rng.random() < spec.write_fraction,
                    gap_instr=max(1, per_gap),
                )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _initial_hot_set(self, rng: random.Random) -> List[int]:
        count = max(1, int(self.spec.footprint_pages * self.spec.hot_fraction))
        return rng.sample(range(self.spec.footprint_pages), count)

    def _shift_hot_set(self, rng: random.Random, hot: List[int], pages: int) -> None:
        replace = max(1, int(len(hot) * self.spec.phase_shift))
        current = set(hot)
        for _ in range(replace):
            victim = rng.randrange(len(hot))
            for _attempt in range(8):
                candidate = rng.randrange(pages)
                if candidate not in current:
                    current.discard(hot[victim])
                    hot[victim] = candidate
                    current.add(candidate)
                    break

    def _active_region(self, page: int) -> tuple:
        """The page's stable active subblock window (start, length).

        Derived from a per-page hash so it never changes across phases
        or re-visits — the program simply never touches the rest of the
        page."""
        length = max(1, round(self.spec.page_density * SUBBLOCKS_PER_BLOCK))
        if length >= SUBBLOCKS_PER_BLOCK:
            return 0, SUBBLOCKS_PER_BLOCK
        digest = zlib.crc32(f"{self._seed}:{self.spec.name}:region:{page}".encode())
        start = digest % (SUBBLOCKS_PER_BLOCK - length + 1)
        return start, length

    def _pick_page(self, rng: random.Random, hot: List[int], pages: int) -> int:
        if rng.random() < self.spec.hot_weight:
            return hot[rng.randrange(len(hot))]
        return rng.randrange(pages)

    def _run_length(self, rng: random.Random) -> int:
        """Geometric run length with mean ``spatial_run``, capped at 32."""
        mean = self.spec.spatial_run
        if mean <= 1.0:
            return 1
        p = 1.0 / mean
        length = 1
        while rng.random() > p and length < SUBBLOCKS_PER_BLOCK:
            length += 1
        return length


class MissBatch:
    """One pregenerated window of the miss stream, column-major.

    Plain Python lists (materialized from the vectorized generation in
    :meth:`WorkloadModel.miss_batches` via ``ndarray.tolist``) so the
    replaying core's per-access indexing pays no numpy-scalar boxing
    and every value JSON-serialises like its scalar twin: ``pc``/
    ``vaddr``/``gap_instr`` are Python ints, ``is_write`` Python bools.
    """

    __slots__ = ("pc", "vaddr", "is_write", "gap_instr")

    def __init__(self, pc: List[int], vaddr: List[int],
                 is_write: List[bool], gap_instr: List[int]) -> None:
        self.pc = pc
        self.vaddr = vaddr
        self.is_write = is_write
        self.gap_instr = gap_instr

    def __len__(self) -> int:
        return len(self.pc)

    def records(self) -> Iterator[MemoryAccess]:
        """The window as scalar records (test/diagnostic convenience)."""
        for pc, vaddr, is_write, gap in zip(self.pc, self.vaddr,
                                            self.is_write, self.gap_instr):
            yield MemoryAccess(pc=pc, vaddr=vaddr, is_write=is_write,
                               gap_instr=gap)
