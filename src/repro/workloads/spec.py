"""The paper's Table III workload suite as synthetic presets.

The paper runs 14 SPEC CPU2006 benchmarks in 16-copy rate mode, grouped
by LLC MPKI: low (< 11), medium (11-32), high (> 32).  We reproduce each
benchmark's *memory-level personality* — MPKI class, footprint, hot-set
skew, spatial locality, and phase behaviour — from Table III plus the
evaluation text's qualitative observations:

* ``xalancbmk``: hot pages unevenly spread over NM sets; locking adds
  ~14% (Section V-A).
* ``gcc``: many lukewarm blocks; associativity adds ~36%, locking little.
* ``gemsfdtd``: short-lived hot pages; epoch-based HMA degrades.
* ``libquantum``: conflicts hurt CAMEO; fully-associative HMA does well.
* ``milc``: thrashing conflicts; exceeds the 0.8 access-rate point, so
  bypassing/bandwidth-balancing helps.
* ``bwaves``: never reaches the 0.8 access rate (bypass is a no-op).
* ``lbm``/``leslie3d``: streaming with high spatial locality.
* ``mcf``/``omnetpp``: pointer-chasing, poor spatial locality, with mcf
  having the largest footprint in the suite.

Footprints are **total across the 16 copies**, expressed as a fraction
of the flat capacity and scaled with the configured memory size, so the
footprint:NM pressure matches the paper at any simulation scale.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List

from repro.sim.config import BLOCK_BYTES, SystemConfig
from repro.workloads.model import WorkloadSpec

#: Table III at paper scale: NM = 4 GB, FM = 16 GB, total = 20 GB.
_PAPER_TOTAL_GB = 20.0

#: name -> (mpki, total footprint in "paper GB", category)
_TABLE3: Dict[str, tuple] = {
    "bwaves": (8.0, 6.0, "low"),
    "cactusADM": (6.0, 3.0, "low"),
    "dealII": (5.0, 2.0, "low"),
    "xalancbmk": (10.0, 1.5, "low"),
    "gcc": (15.0, 3.0, "medium"),
    "gemsFDTD": (25.0, 6.0, "medium"),
    "leslie3d": (20.0, 4.0, "medium"),
    "omnetpp": (18.0, 2.0, "medium"),
    "zeusmp": (14.0, 4.0, "medium"),
    "lbm": (40.0, 6.0, "high"),
    "libquantum": (35.0, 1.0, "high"),
    "mcf": (55.0, 14.0, "high"),
    "milc": (45.0, 8.0, "high"),
    "soplex": (33.0, 5.0, "high"),
}

#: per-benchmark personality beyond MPKI/footprint
_PERSONALITY: Dict[str, dict] = {
    "bwaves": dict(spatial_run=16.0, hot_fraction=0.35, hot_weight=0.85,
                   page_density=0.9),
    "cactusADM": dict(spatial_run=6.0, hot_fraction=0.50, hot_weight=0.80,
                      page_density=0.5, phase_misses=10_000, phase_shift=0.3),
    "dealII": dict(spatial_run=6.0, hot_fraction=0.50, hot_weight=0.80,
                   page_density=0.5, phase_misses=12_000, phase_shift=0.3),
    "xalancbmk": dict(spatial_run=6.0, hot_fraction=0.08, hot_weight=0.92,
                      page_density=0.4),
    "gcc": dict(spatial_run=5.0, hot_fraction=0.60, hot_weight=0.60,
                page_density=0.45, phase_misses=8_000, phase_shift=0.3),
    "gemsFDTD": dict(spatial_run=8.0, hot_fraction=0.30, hot_weight=0.85,
                     phase_misses=3_000, phase_shift=0.6, page_density=0.6),
    "leslie3d": dict(spatial_run=12.0, hot_fraction=0.40, hot_weight=0.80,
                     page_density=0.8, phase_misses=8_000, phase_shift=0.3),
    "omnetpp": dict(spatial_run=2.5, hot_fraction=0.40, hot_weight=0.80,
                    page_density=0.25, phase_misses=6_000, phase_shift=0.4),
    "zeusmp": dict(spatial_run=8.0, hot_fraction=0.40, hot_weight=0.75,
                   page_density=0.6, phase_misses=8_000, phase_shift=0.3),
    "lbm": dict(spatial_run=16.0, hot_fraction=0.50, hot_weight=0.70,
                write_fraction=0.40, page_density=1.0,
                phase_misses=5_000, phase_shift=0.5),
    "libquantum": dict(spatial_run=24.0, hot_fraction=0.60, hot_weight=0.85,
                       page_density=1.0),
    "mcf": dict(spatial_run=2.0, hot_fraction=0.35, hot_weight=0.75,
                page_density=0.2, phase_misses=6_000, phase_shift=0.4),
    "milc": dict(spatial_run=4.0, hot_fraction=0.60, hot_weight=0.70,
                 page_density=0.5, phase_misses=5_000, phase_shift=0.4),
    "soplex": dict(spatial_run=5.0, hot_fraction=0.40, hot_weight=0.75,
                   page_density=0.4, phase_misses=9_000, phase_shift=0.3),
}

#: per-benchmark personality beyond MPKI/footprint
_PERSONALITY: Dict[str, dict] = {
    "bwaves": dict(spatial_run=16.0, hot_fraction=0.20, hot_weight=0.85,
                   page_density=0.9),
    "cactusADM": dict(spatial_run=6.0, hot_fraction=0.15, hot_weight=0.80,
                      page_density=0.5),
    "dealII": dict(spatial_run=6.0, hot_fraction=0.12, hot_weight=0.80,
                   page_density=0.5),
    "xalancbmk": dict(spatial_run=6.0, hot_fraction=0.05, hot_weight=0.92,
                      page_density=0.4),
    "gcc": dict(spatial_run=5.0, hot_fraction=0.30, hot_weight=0.60,
                page_density=0.45),
    "gemsFDTD": dict(spatial_run=8.0, hot_fraction=0.10, hot_weight=0.85,
                     phase_misses=20_000, phase_shift=0.6, page_density=0.6),
    "leslie3d": dict(spatial_run=12.0, hot_fraction=0.15, hot_weight=0.80,
                     page_density=0.8),
    "omnetpp": dict(spatial_run=2.5, hot_fraction=0.10, hot_weight=0.80,
                    page_density=0.25),
    "zeusmp": dict(spatial_run=8.0, hot_fraction=0.15, hot_weight=0.75,
                   page_density=0.6),
    "lbm": dict(spatial_run=16.0, hot_fraction=0.25, hot_weight=0.70,
                write_fraction=0.40, page_density=1.0),
    "libquantum": dict(spatial_run=24.0, hot_fraction=0.40, hot_weight=0.80,
                       page_density=1.0),
    "mcf": dict(spatial_run=2.0, hot_fraction=0.10, hot_weight=0.75,
                page_density=0.2),
    "milc": dict(spatial_run=4.0, hot_fraction=0.50, hot_weight=0.65,
                 page_density=0.5),
    "soplex": dict(spatial_run=5.0, hot_fraction=0.15, hot_weight=0.75,
                   page_density=0.4),
}

BENCHMARKS: List[str] = list(_TABLE3)

LOW_MPKI = [n for n, v in _TABLE3.items() if v[2] == "low"]
MEDIUM_MPKI = [n for n, v in _TABLE3.items() if v[2] == "medium"]
HIGH_MPKI = [n for n, v in _TABLE3.items() if v[2] == "high"]


def benchmark_spec(name: str, config: SystemConfig) -> WorkloadSpec:
    """The :class:`WorkloadSpec` for one benchmark, with its footprint
    scaled to ``config``'s flat capacity.

    The returned footprint is the **total** page count across all
    cores; :func:`per_core_spec` divides it for one rate-mode instance.
    """
    if name not in _TABLE3:
        raise KeyError(f"unknown benchmark {name!r}; choose from {BENCHMARKS}")
    mpki, paper_gb, category = _TABLE3[name]
    fraction = paper_gb / _PAPER_TOTAL_GB
    total_pages = max(16, int(config.total_bytes * fraction) // BLOCK_BYTES)
    return WorkloadSpec(
        name=name,
        mpki=mpki,
        footprint_pages=total_pages,
        category=category,
        **_PERSONALITY[name],
    )


def per_core_spec(name: str, config: SystemConfig) -> WorkloadSpec:
    """One rate-mode instance: 1/``cores`` of the total footprint."""
    spec = benchmark_spec(name, config)
    per_core = max(8, spec.footprint_pages // config.cores)
    return replace(spec, footprint_pages=per_core)


def suite(config: SystemConfig, names: List[str] = None) -> Dict[str, WorkloadSpec]:
    """Per-core specs for a list of benchmarks (default: all 14)."""
    return {
        name: per_core_spec(name, config) for name in (names or BENCHMARKS)
    }
