"""Synthetic workload generation (the Pin/SPEC-trace substitute)."""

from repro.workloads.model import PC_BASE, PC_POOL_SIZE, WorkloadModel, WorkloadSpec
from repro.workloads.spec import (
    BENCHMARKS,
    HIGH_MPKI,
    LOW_MPKI,
    MEDIUM_MPKI,
    benchmark_spec,
    per_core_spec,
    suite,
)
from repro.workloads.trace import (
    MemoryAccess,
    interleave_round_robin,
    materialize,
    trace_stats,
)

__all__ = [
    "BENCHMARKS",
    "HIGH_MPKI",
    "LOW_MPKI",
    "MEDIUM_MPKI",
    "MemoryAccess",
    "PC_BASE",
    "PC_POOL_SIZE",
    "WorkloadModel",
    "WorkloadSpec",
    "benchmark_spec",
    "interleave_round_robin",
    "materialize",
    "per_core_spec",
    "suite",
    "trace_stats",
]
