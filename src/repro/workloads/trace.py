"""Trace record types shared by the workload generators and the CPU
model.

A trace is an iterable of :class:`MemoryAccess` records.  ``gap_instr``
is the number of instructions the core executes *before* this access —
it is what turns a miss stream with a target MPKI into compute time
between misses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List


@dataclass(frozen=True)
class MemoryAccess:
    """One memory reference (virtual address space of its process)."""

    pc: int
    vaddr: int
    is_write: bool
    gap_instr: int

    def __post_init__(self) -> None:
        if self.vaddr < 0 or self.pc < 0 or self.gap_instr < 0:
            raise ValueError("trace fields must be non-negative")


def materialize(trace: Iterable[MemoryAccess], limit: int) -> List[MemoryAccess]:
    """Pull at most ``limit`` records from a trace generator."""
    out: List[MemoryAccess] = []
    for record in trace:
        out.append(record)
        if len(out) >= limit:
            break
    return out


def interleave_round_robin(traces: List[Iterator[MemoryAccess]]) -> Iterator[MemoryAccess]:
    """Round-robin merge of several traces (used by trace-analysis tools;
    the full system keeps per-core traces separate)."""
    active = list(traces)
    while active:
        still_active = []
        for trace in active:
            record = next(trace, None)
            if record is not None:
                yield record
                still_active.append(trace)
        active = still_active


def trace_stats(trace: Iterable[MemoryAccess]):
    """Summarise a (finite) trace: counts, write fraction, footprint."""
    from repro.sim.config import BLOCK_BYTES

    count = 0
    writes = 0
    instructions = 0
    pages = set()
    for record in trace:
        count += 1
        writes += record.is_write
        instructions += record.gap_instr
        pages.add(record.vaddr // BLOCK_BYTES)
    return {
        "accesses": count,
        "write_fraction": writes / count if count else 0.0,
        "instructions": instructions,
        "footprint_pages": len(pages),
        "footprint_bytes": len(pages) * BLOCK_BYTES,
        "mpki": count / instructions * 1000.0 if instructions else 0.0,
    }
